//! Chunk-parallel trace decoding.
//!
//! `.alct` chunks are self-contained — each carries its own event count and
//! reseeds the delta codec at its `t_first` — so after the cheap sequential
//! scan that slices the stream into [`RawChunk`]s, every payload decodes
//! independently. [`decode_events_par`] fans the chunks out to scoped
//! worker threads (work-stealing over an atomic cursor, so a few oversized
//! chunks cannot serialize the pool) and reassembles the event vector in
//! trace order.
//!
//! Error semantics match the sequential reader as closely as a batch API
//! can: if several chunks are corrupt, the error reported is the one the
//! sequential decoder would have hit first (lowest chunk index), and no
//! events are returned.

use crate::error::TraceError;
use crate::format::{self, CodecState};
use crate::reader::{RawChunk, RecoveryReport, ReplaySummary, TraceReader};
use alchemist_obs::{span_opt, Counter, Hist, Metrics, Stage};
use alchemist_vm::{Event, EventBatch, Tid};
use std::io::Read;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Decodes one raw chunk into its events.
///
/// # Errors
///
/// Any payload-level [`TraceError`] ([`TraceError::Truncated`] mid-event,
/// [`TraceError::BadEventTag`], delta overflow, trailing bytes).
pub fn decode_chunk(chunk: &RawChunk) -> Result<Vec<Event>, TraceError> {
    let mut state = CodecState::new(chunk.t_first);
    let mut pos = 0;
    let tids = decode_chunk_tids(chunk, &mut pos)?;
    let mut events = Vec::with_capacity(chunk.events as usize);
    for i in 0..chunk.events {
        let mut ev = format::decode_event(&mut state, &chunk.payload, &mut pos)?;
        if let Some(tids) = &tids {
            ev = ev.with_tid(Tid(tids[i as usize]));
        }
        events.push(ev);
    }
    if pos != chunk.payload.len() {
        return Err(TraceError::Malformed("trailing bytes in chunk"));
    }
    Ok(events)
}

/// Consumes the v2 thread-id column at the head of `chunk.payload`, if the
/// chunk's format version carries one.
fn decode_chunk_tids(chunk: &RawChunk, pos: &mut usize) -> Result<Option<Vec<u32>>, TraceError> {
    if chunk.version < format::VERSION_V2 {
        return Ok(None);
    }
    let mut tids = Vec::new();
    format::decode_tid_column(&chunk.payload, pos, chunk.events as usize, &mut tids)?;
    Ok(Some(tids))
}

/// Decodes one raw chunk straight into `batch` (cleared first), without
/// materializing a `Vec<Event>`.
///
/// # Errors
///
/// Same payload-level errors as [`decode_chunk`]; rows decoded before the
/// error remain in `batch` and should be discarded by the caller.
pub fn decode_chunk_into(chunk: &RawChunk, batch: &mut EventBatch) -> Result<(), TraceError> {
    batch.clear();
    let mut state = CodecState::new(chunk.t_first);
    let mut pos = 0;
    let tids = decode_chunk_tids(chunk, &mut pos)?;
    for i in 0..chunk.events {
        let mut ev = format::decode_event(&mut state, &chunk.payload, &mut pos)?;
        if let Some(tids) = &tids {
            ev = ev.with_tid(Tid(tids[i as usize]));
        }
        batch.push_event(&ev);
    }
    if pos != chunk.payload.len() {
        return Err(TraceError::Malformed("trailing bytes in chunk"));
    }
    Ok(())
}

/// Runs `decode` over every chunk on `jobs` worker threads (work-stealing
/// over an atomic cursor) and returns the per-chunk results in trace
/// order. `jobs <= 1` decodes inline.
fn decode_chunks_ordered<T, F>(
    chunks: &[RawChunk],
    jobs: usize,
    decode: F,
) -> Vec<Result<T, TraceError>>
where
    T: Send,
    F: Fn(&RawChunk) -> Result<T, TraceError> + Sync,
{
    if jobs <= 1 {
        return chunks.iter().map(decode).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (cursor, decode) = (&cursor, &decode);
    let mut slots: Vec<(usize, Result<T, TraceError>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(chunk) = chunks.get(i) else {
                            return done;
                        };
                        done.push((i, decode(chunk)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("decode worker panicked"))
            .collect()
    });
    slots.sort_unstable_by_key(|(i, _)| *i);
    slots.into_iter().map(|(_, r)| r).collect()
}

/// Decodes a whole trace into an event vector using `jobs` worker threads.
///
/// Equivalent to collecting the reader's event iterator — same events, same
/// order, same `total_steps` — but the payload decoding runs chunk-parallel.
/// `jobs <= 1` (or a single-chunk trace) decodes inline.
///
/// # Errors
///
/// Structural errors from the chunk scan, or the first (in trace order)
/// payload decode error.
///
/// # Examples
///
/// ```
/// use alchemist_trace::{decode_events_par, TraceReader, TraceWriter};
/// use alchemist_vm::{compile_source, run, ExecConfig, RecordingSink};
///
/// let src = "int g; int main() { int i; for (i = 0; i < 64; i++) g += i; return g; }";
/// let module = compile_source(src)?;
/// let mut writer = TraceWriter::new(Vec::new(), None).unwrap().with_chunk_capacity(32);
/// let out = run(&module, &ExecConfig::default(), &mut writer).unwrap();
/// let (bytes, _) = writer.finish(out.steps).unwrap();
///
/// let mut live = RecordingSink::default();
/// run(&module, &ExecConfig::default(), &mut live).unwrap();
///
/// let reader = TraceReader::new(bytes.as_slice()).unwrap();
/// let (events, summary) = decode_events_par(reader, 4).unwrap();
/// assert_eq!(events, live.events);
/// assert_eq!(summary.total_steps, out.steps);
/// # Ok::<(), alchemist_lang::LangError>(())
/// ```
pub fn decode_events_par<R: Read>(
    mut reader: TraceReader<R>,
    jobs: usize,
) -> Result<(Vec<Event>, ReplaySummary), TraceError> {
    let (chunks, total_steps) = reader.read_raw_chunks()?;
    let jobs = jobs.max(1).min(chunks.len().max(1));
    let decoded = decode_chunks_ordered(&chunks, jobs, decode_chunk);
    let mut events = Vec::with_capacity(chunks.iter().map(|c| c.events as usize).sum());
    for chunk in decoded {
        events.extend(chunk?);
    }
    let summary = ReplaySummary {
        events: events.len() as u64,
        total_steps,
    };
    Ok((events, summary))
}

/// Decodes a whole trace chunk-parallel into one [`EventBatch`] per chunk.
///
/// This is the bulk-pipeline twin of [`decode_events_par`]: the same
/// events in the same order, but kept in struct-of-arrays batches that
/// downstream batch-aware consumers
/// (`alchemist_core::profile_batches_par`, shard partitioning, fan-outs)
/// process without ever materializing a `Vec<Event>`. Concatenating the
/// batches' rows yields exactly the sequential reader's event stream.
///
/// # Errors
///
/// Structural errors from the chunk scan, or the first (in trace order)
/// payload decode error — matching [`decode_events_par`].
pub fn decode_batches_par<R: Read>(
    reader: TraceReader<R>,
    jobs: usize,
) -> Result<(Vec<EventBatch>, ReplaySummary), TraceError> {
    decode_batches_par_with(reader, jobs, None)
}

/// [`decode_batches_par`] with self-instrumentation: when `metrics` is
/// `Some`, the whole fan-out runs under a `decode` stage span, every worker
/// records its chunk's decode latency into [`Hist::DecodeChunkNs`] plus the
/// chunk/byte counters, and the total decoded event count is folded in at
/// the end. With `None` this *is* [`decode_batches_par`] — not even a clock
/// read on any path.
///
/// # Errors
///
/// Same as [`decode_batches_par`].
pub fn decode_batches_par_with<R: Read>(
    mut reader: TraceReader<R>,
    jobs: usize,
    metrics: Option<&Metrics>,
) -> Result<(Vec<EventBatch>, ReplaySummary), TraceError> {
    let _decode_span = span_opt(metrics, Stage::Decode);
    let (chunks, total_steps) = reader.read_raw_chunks()?;
    let jobs = jobs.max(1).min(chunks.len().max(1));
    let decoded = decode_chunks_ordered(&chunks, jobs, |chunk| {
        let t0 = metrics.map(|_| Instant::now());
        let mut batch = EventBatch::with_capacity(chunk.events as usize);
        decode_chunk_into(chunk, &mut batch)?;
        if let (Some(m), Some(t0)) = (metrics, t0) {
            m.observe_ns(Hist::DecodeChunkNs, t0.elapsed().as_nanos() as u64);
            m.incr(Counter::TraceChunksDecoded);
            m.add(Counter::TraceBytesDecoded, chunk.payload.len() as u64);
        }
        Ok(batch)
    });
    let mut batches = Vec::with_capacity(chunks.len());
    let mut events = 0u64;
    for batch in decoded {
        let batch = batch?;
        events += batch.len() as u64;
        batches.push(batch);
    }
    if let Some(m) = metrics {
        m.add(Counter::TraceEventsDecoded, events);
    }
    Ok((
        batches,
        ReplaySummary {
            events,
            total_steps,
        },
    ))
}

/// Salvage twin of [`decode_batches_par_with`]: skips corrupt chunks
/// instead of aborting and never fails past the header.
///
/// The chunk scan drops chunks with bad CRCs or truncated payloads
/// ([`TraceReader::read_raw_chunks_recover`]); this layer additionally
/// drops chunks whose payloads fail to *decode* — the only way v1/v2
/// corruption (no CRC) can be detected — and folds those into the same
/// [`RecoveryReport`]. Surviving batches are in trace order; the summary's
/// `total_steps` is exact when the footer survived and a lower-bound
/// estimate otherwise.
pub fn decode_batches_par_recover<R: Read>(
    mut reader: TraceReader<R>,
    jobs: usize,
    metrics: Option<&Metrics>,
) -> (Vec<EventBatch>, ReplaySummary, RecoveryReport) {
    let _decode_span = span_opt(metrics, Stage::Decode);
    let (chunks, total_steps, mut report) = reader.read_raw_chunks_recover();
    let jobs = jobs.max(1).min(chunks.len().max(1));
    let decoded = decode_chunks_ordered(&chunks, jobs, |chunk| {
        let t0 = metrics.map(|_| Instant::now());
        let mut batch = EventBatch::with_capacity(chunk.events as usize);
        decode_chunk_into(chunk, &mut batch)?;
        if let (Some(m), Some(t0)) = (metrics, t0) {
            m.observe_ns(Hist::DecodeChunkNs, t0.elapsed().as_nanos() as u64);
            m.incr(Counter::TraceChunksDecoded);
            m.add(Counter::TraceBytesDecoded, chunk.payload.len() as u64);
        }
        Ok(batch)
    });
    let mut batches = Vec::with_capacity(chunks.len());
    let mut events = 0u64;
    for (chunk, result) in chunks.iter().zip(decoded) {
        match result {
            Ok(batch) => {
                events += batch.len() as u64;
                batches.push(batch);
            }
            Err(err) => {
                // The scan credited this chunk as salvaged; take it back.
                report.events_salvaged -= chunk.events;
                report.record_failure(&err, chunk.events, None);
            }
        }
    }
    if let Some(m) = metrics {
        m.add(Counter::TraceEventsDecoded, events);
    }
    (
        batches,
        ReplaySummary {
            events,
            total_steps,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use alchemist_lang::hir::FuncId;
    use alchemist_vm::{Pc, RecordingSink, TraceSink};

    fn sample_trace(chunk_capacity: usize, rounds: u32) -> (Vec<u8>, RecordingSink) {
        sample_trace_with(
            TraceWriter::new(Vec::new(), Some("int main() { return 0; }")).unwrap(),
            chunk_capacity,
            rounds,
            |_| Tid::MAIN,
        )
    }

    fn sample_trace_with(
        w: TraceWriter<Vec<u8>>,
        chunk_capacity: usize,
        rounds: u32,
        tid_of: impl Fn(u32) -> Tid,
    ) -> (Vec<u8>, RecordingSink) {
        let mut live = RecordingSink::default();
        let mut w = w.with_chunk_capacity(chunk_capacity);
        let mut t = 0;
        for i in 0..rounds {
            let tid = tid_of(i);
            live.on_enter_function(t, FuncId(i % 3), 8 * i, tid);
            w.on_enter_function(t, FuncId(i % 3), 8 * i, tid);
            t += 2;
            live.on_read(t, i, Pc(i * 5), tid);
            w.on_read(t, i, Pc(i * 5), tid);
            t += 1;
            live.on_write(t, i + 100, Pc(i * 5 + 1), tid);
            w.on_write(t, i + 100, Pc(i * 5 + 1), tid);
            t += 40;
            live.on_exit_function(t, FuncId(i % 3), tid);
            w.on_exit_function(t, FuncId(i % 3), tid);
            t += 1;
        }
        let (bytes, _) = w.finish(t).unwrap();
        (bytes, live)
    }

    #[test]
    fn parallel_decode_equals_sequential_iteration() {
        let (bytes, live) = sample_trace(7, 40);
        for jobs in [1usize, 2, 4, 9] {
            let reader = TraceReader::new(bytes.as_slice()).unwrap();
            let (events, summary) = decode_events_par(reader, jobs).unwrap();
            assert_eq!(events, live.events, "jobs={jobs}");
            assert_eq!(summary.events, live.events.len() as u64);
        }
    }

    #[test]
    fn parallel_batch_decode_equals_event_decode() {
        let (bytes, live) = sample_trace(7, 40);
        for jobs in [1usize, 2, 4, 9] {
            let reader = TraceReader::new(bytes.as_slice()).unwrap();
            let (batches, summary) = decode_batches_par(reader, jobs).unwrap();
            let flat: Vec<Event> = batches.iter().flat_map(|b| b.iter()).collect();
            assert_eq!(flat, live.events, "jobs={jobs}");
            assert_eq!(summary.events, live.events.len() as u64);
            // One batch per event-bearing chunk, each matching its chunk.
            let infos = TraceReader::new(bytes.as_slice())
                .unwrap()
                .read_chunk_infos()
                .unwrap();
            assert_eq!(batches.len(), infos.len(), "jobs={jobs}");
            for (b, info) in batches.iter().zip(&infos) {
                assert_eq!(b.len() as u64, info.events, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn metrics_instrumented_decode_matches_uninstrumented() {
        let (bytes, live) = sample_trace(7, 40);
        let m = Metrics::new();
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        let (batches, summary) = decode_batches_par_with(reader, 4, Some(&m)).unwrap();
        let flat: Vec<Event> = batches.iter().flat_map(|b| b.iter()).collect();
        assert_eq!(flat, live.events);
        assert_eq!(summary.events, live.events.len() as u64);

        let infos = TraceReader::new(bytes.as_slice())
            .unwrap()
            .read_chunk_infos()
            .unwrap();
        assert_eq!(m.get(Counter::TraceChunksDecoded), infos.len() as u64);
        assert_eq!(m.get(Counter::TraceEventsDecoded), live.events.len() as u64);
        assert!(m.get(Counter::TraceBytesDecoded) > 0);
        let (count, _total) = m.hist_totals(Hist::DecodeChunkNs);
        assert_eq!(count, infos.len() as u64);
        let (wall, calls) = m.stage(Stage::Decode);
        assert_eq!(calls, 1);
        assert!(wall > 0);
    }

    #[test]
    fn batch_decode_reports_corruption_like_event_decode() {
        let (bytes, _) = sample_trace(7, 12);
        for pos in (8..bytes.len()).step_by(13) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0xff;
            let ev = match TraceReader::new(corrupt.as_slice()) {
                Ok(r) => decode_events_par(r, 4).map(|(e, _)| e),
                Err(e) => Err(e),
            };
            let ba = match TraceReader::new(corrupt.as_slice()) {
                Ok(r) => decode_batches_par(r, 4)
                    .map(|(b, _)| b.iter().flat_map(|b| b.iter()).collect::<Vec<_>>()),
                Err(e) => Err(e),
            };
            match (ev, ba) {
                (Ok(e), Ok(b)) => assert_eq!(e, b, "flip at {pos}"),
                (Err(_), Err(_)) => {}
                (e, b) => panic!("flip at {pos}: decoders disagree: {e:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn parallel_decode_of_empty_trace() {
        let (bytes, _) = TraceWriter::new(Vec::new(), None)
            .unwrap()
            .finish(5)
            .unwrap();
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        let (events, summary) = decode_events_par(reader, 8).unwrap();
        assert!(events.is_empty());
        assert_eq!(summary.total_steps, 5);
    }

    #[test]
    fn more_jobs_than_chunks_is_fine() {
        let (bytes, live) = sample_trace(1000, 5);
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        let (events, _) = decode_events_par(reader, 32).unwrap();
        assert_eq!(events, live.events);
    }

    #[test]
    fn corruption_behaves_like_the_sequential_reader() {
        // Flip every byte position in turn: wherever the sequential decoder
        // errors, the parallel decoder must error too (and where the flip
        // happens to be benign, both must deliver the same events).
        let (bytes, _) = sample_trace(7, 12);
        for pos in (8..bytes.len()).step_by(13) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0xff;
            let seq: Result<Vec<Event>, TraceError> = match TraceReader::new(corrupt.as_slice()) {
                Ok(r) => r.collect(),
                Err(e) => Err(e),
            };
            let par = match TraceReader::new(corrupt.as_slice()) {
                Ok(r) => decode_events_par(r, 4),
                Err(e) => Err(e),
            };
            match seq {
                Ok(events) => {
                    let (par_events, _) = par.unwrap_or_else(|e| {
                        panic!("flip at {pos}: sequential ok, parallel errored: {e}")
                    });
                    assert_eq!(par_events, events, "flip at {pos}");
                }
                Err(_) => assert!(par.is_err(), "flip at {pos}: parallel swallowed the error"),
            }
        }
    }

    #[test]
    fn parallel_decode_preserves_v2_thread_ids() {
        let (bytes, live) =
            sample_trace_with(TraceWriter::new_v2(Vec::new(), None).unwrap(), 7, 40, |i| {
                Tid(i % 5)
            });
        assert!(live.events.iter().any(|e| e.tid() != Tid::MAIN));
        for jobs in [1usize, 2, 4] {
            let reader = TraceReader::new(bytes.as_slice()).unwrap();
            let (events, _) = decode_events_par(reader, jobs).unwrap();
            assert_eq!(events, live.events, "jobs={jobs}");
            let reader = TraceReader::new(bytes.as_slice()).unwrap();
            let (batches, _) = decode_batches_par(reader, jobs).unwrap();
            let flat: Vec<Event> = batches.iter().flat_map(|b| b.iter()).collect();
            assert_eq!(flat, live.events, "jobs={jobs}");
        }
    }

    #[test]
    fn recover_decode_of_a_clean_trace_matches_normal_decode() {
        let fixtures = [
            sample_trace_with(TraceWriter::new(Vec::new(), None).unwrap(), 7, 40, |_| {
                Tid::MAIN
            }),
            sample_trace_with(TraceWriter::new_v2(Vec::new(), None).unwrap(), 7, 40, |i| {
                Tid(i % 5)
            }),
            sample_trace_with(TraceWriter::new_v3(Vec::new(), None).unwrap(), 7, 40, |i| {
                Tid(i % 5)
            }),
        ];
        for (bytes, live) in &fixtures {
            let reader = TraceReader::new(bytes.as_slice()).unwrap();
            let (batches, summary, report) = decode_batches_par_recover(reader, 4, None);
            assert!(report.is_clean(), "{report:?}");
            let flat: Vec<Event> = batches.iter().flat_map(|b| b.iter()).collect();
            assert_eq!(flat, live.events);
            assert_eq!(summary.events, live.events.len() as u64);
            assert_eq!(report.events_salvaged, summary.events);
        }
    }

    #[test]
    fn recover_decode_salvages_prefixes_of_truncated_traces() {
        let (bytes, live) = sample_trace(7, 40);
        for cut in (10..bytes.len()).step_by(17) {
            let Ok(reader) = TraceReader::new(&bytes[..cut]) else {
                continue; // cut inside the header: nothing to salvage
            };
            let (batches, summary, report) = decode_batches_par_recover(reader, 4, None);
            let flat: Vec<Event> = batches.iter().flat_map(|b| b.iter()).collect();
            assert_eq!(
                flat[..],
                live.events[..flat.len()],
                "cut={cut}: salvage must be a clean prefix"
            );
            assert_eq!(summary.events, flat.len() as u64);
            assert!(
                !report.is_clean() || cut == bytes.len(),
                "cut={cut}: truncation must be reported"
            );
        }
    }

    #[test]
    fn recover_decode_never_errors_on_flipped_bytes() {
        let (bytes, live) = sample_trace(7, 12);
        for pos in (8..bytes.len()).step_by(13) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0xff;
            let Ok(reader) = TraceReader::new(corrupt.as_slice()) else {
                continue;
            };
            let (batches, summary, report) = decode_batches_par_recover(reader, 4, None);
            let flat: Vec<Event> = batches.iter().flat_map(|b| b.iter()).collect();
            assert_eq!(summary.events, flat.len() as u64, "flip at {pos}");
            assert_eq!(report.events_salvaged, summary.events, "flip at {pos}");
            if report.is_clean() {
                assert_eq!(flat, live.events, "flip at {pos} was claimed clean");
            }
        }
    }

    #[test]
    fn recover_decode_skips_crc_corrupt_chunks_on_v3() {
        let (bytes, live) =
            sample_trace_with(TraceWriter::new_v3(Vec::new(), None).unwrap(), 7, 40, |i| {
                Tid(i % 3)
            });
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        let (clean_batches, _, _) = decode_batches_par_recover(reader, 1, None);
        assert!(clean_batches.len() >= 3);
        // Corrupt one payload byte of an interior chunk.
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let (raw, _, _) = r.read_raw_chunks_recover();
        let needle = raw[1].payload.as_slice();
        let pos = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .unwrap();
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x80;
        let reader = TraceReader::new(corrupt.as_slice()).unwrap();
        let (batches, summary, report) = decode_batches_par_recover(reader, 4, None);
        assert_eq!(report.chunks_skipped, 1, "{report:?}");
        assert_eq!(report.crc_mismatches, 1);
        assert!(report.footer_recovered);
        let flat: Vec<Event> = batches.iter().flat_map(|b| b.iter()).collect();
        let expect: Vec<Event> = clean_batches
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .flat_map(|(_, b)| b.iter())
            .collect();
        assert_eq!(flat, expect, "all chunks but the corrupt one survive");
        assert_eq!(summary.events, live.events.len() as u64 - raw[1].events);
    }

    #[test]
    fn raw_chunks_partition_the_events() {
        let (bytes, live) = sample_trace(8, 25);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let (chunks, total_steps) = r.read_raw_chunks().unwrap();
        assert!(chunks.len() > 1);
        assert_eq!(
            chunks.iter().map(|c| c.events).sum::<u64>(),
            live.events.len() as u64
        );
        assert!(total_steps > 0);
        let rejoined: Vec<Event> = chunks
            .iter()
            .map(|c| decode_chunk(c).unwrap())
            .collect::<Vec<_>>()
            .concat();
        assert_eq!(rejoined, live.events);
    }
}
