//! Crash-safe file creation: write into a hidden temp file, then rename it
//! over the final path in one atomic step.
//!
//! Every file-producing path in the pipeline (trace recording, profile
//! artifacts, metrics reports) commits through [`AtomicFile`], so a crash,
//! SIGKILL or full disk mid-write can never leave a half-written file under
//! the requested name — observers see either the old content or the
//! complete new content. The temp file lives in the same directory as the
//! target (rename is only atomic within a filesystem) and is deleted on
//! drop if never committed.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// A file that appears at its final path only when [`AtomicFile::commit`]
/// succeeds. Dropping without committing deletes the temp file.
#[derive(Debug)]
pub struct AtomicFile {
    /// `Some` until commit or drop.
    file: Option<File>,
    tmp_path: PathBuf,
    final_path: PathBuf,
}

impl AtomicFile {
    /// Opens `<path>.tmp.<pid>` for writing, in `path`'s directory.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from creating the temp file (missing directory,
    /// permissions, full disk).
    pub fn create(path: impl AsRef<Path>) -> io::Result<AtomicFile> {
        let path = path.as_ref();
        let mut name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(format!(".tmp.{}", std::process::id()));
        let tmp_path = path.with_file_name(name);
        let file = File::create(&tmp_path)?;
        Ok(AtomicFile {
            file: Some(file),
            tmp_path,
            final_path: path.to_path_buf(),
        })
    }

    /// The path the committed file will appear at.
    pub fn path(&self) -> &Path {
        &self.final_path
    }

    /// Syncs the temp file to disk and renames it over the final path.
    /// On failure the temp file is removed and the final path is untouched.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from `fsync` or the rename.
    pub fn commit(mut self) -> io::Result<()> {
        let file = self.file.take().expect("file present until commit/drop");
        let result = file
            .sync_all()
            .and_then(|()| fs::rename(&self.tmp_path, &self.final_path));
        drop(file);
        if result.is_err() {
            let _ = fs::remove_file(&self.tmp_path);
        }
        result
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.file
            .as_mut()
            .expect("file present until commit/drop")
            .write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file
            .as_mut()
            .expect("file present until commit/drop")
            .flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            let _ = fs::remove_file(&self.tmp_path);
        }
    }
}

/// One-shot atomic write: `bytes` appear at `path` entirely or not at all.
///
/// # Errors
///
/// Any [`io::Error`] from the temp-file write or the commit rename.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let mut file = AtomicFile::create(path)?;
    file.write_all(bytes)?;
    file.commit()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("alct_atomic_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn committed_writes_appear_at_the_final_path() {
        let dir = scratch_dir("commit");
        let path = dir.join("out.bin");
        write_atomic(&path, b"payload").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"payload");
        // No temp litter.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_files_never_become_visible() {
        let dir = scratch_dir("abort");
        let path = dir.join("out.bin");
        {
            let mut f = AtomicFile::create(&path).unwrap();
            f.write_all(b"half-writ").unwrap();
            // Dropped without commit: simulated crash cleanup.
        }
        assert!(!path.exists(), "uncommitted file must not appear");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0, "temp cleaned up");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_replaces_existing_content_atomically() {
        let dir = scratch_dir("replace");
        let path = dir.join("out.bin");
        write_atomic(&path, b"old").unwrap();
        write_atomic(&path, b"new content").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new content");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_in_a_missing_directory_is_an_error() {
        let dir = scratch_dir("missing");
        let path = dir.join("no_such_subdir").join("out.bin");
        assert!(AtomicFile::create(&path).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
