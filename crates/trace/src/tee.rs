//! Fan-out combinators: drive several sinks from one event stream.
//!
//! Replay (or a live run) visits each event exactly once; [`Tee`] and
//! [`MultiSink`] let that single pass feed any number of consumers — e.g.
//! record a trace *and* profile it in the same execution, or run the
//! counting and profiling analyses over one replay of a file.

use alchemist_lang::hir::FuncId;
use alchemist_vm::{BlockId, EventBatch, Pc, Tid, Time, TraceSink};

/// Forwards every event to two sinks, first `.0` then `.1`.
///
/// Nest tees for a fixed fan-out of three or more:
/// `Tee(a, Tee(b, c))`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for Tee<A, B> {
    fn on_enter_function(&mut self, t: Time, func: FuncId, fp: u32, tid: Tid) {
        self.0.on_enter_function(t, func, fp, tid);
        self.1.on_enter_function(t, func, fp, tid);
    }
    fn on_exit_function(&mut self, t: Time, func: FuncId, tid: Tid) {
        self.0.on_exit_function(t, func, tid);
        self.1.on_exit_function(t, func, tid);
    }
    fn on_block_entry(&mut self, t: Time, block: BlockId, tid: Tid) {
        self.0.on_block_entry(t, block, tid);
        self.1.on_block_entry(t, block, tid);
    }
    fn on_predicate(&mut self, t: Time, pc: Pc, block: BlockId, taken: bool, tid: Tid) {
        self.0.on_predicate(t, pc, block, taken, tid);
        self.1.on_predicate(t, pc, block, taken, tid);
    }
    fn on_read(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        self.0.on_read(t, addr, pc, tid);
        self.1.on_read(t, addr, pc, tid);
    }
    fn on_write(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        self.0.on_write(t, addr, pc, tid);
        self.1.on_write(t, addr, pc, tid);
    }
    fn on_batch(&mut self, batch: &EventBatch) {
        // Forward whole batches so batch-aware consumers keep their bulk
        // path through a tee (the default would degrade them to per-event).
        self.0.on_batch(batch);
        self.1.on_batch(batch);
    }
}

/// Forwards every event to a runtime-chosen list of sinks, in order.
#[derive(Default)]
pub struct MultiSink<'a> {
    sinks: Vec<&'a mut dyn TraceSink>,
}

impl std::fmt::Debug for MultiSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl<'a> MultiSink<'a> {
    /// An empty fan-out.
    pub fn new() -> Self {
        MultiSink::default()
    }

    /// Adds a consumer; events reach consumers in insertion order.
    pub fn push(&mut self, sink: &'a mut dyn TraceSink) -> &mut Self {
        self.sinks.push(sink);
        self
    }

    /// Number of attached consumers.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no consumer is attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TraceSink for MultiSink<'_> {
    fn on_enter_function(&mut self, t: Time, func: FuncId, fp: u32, tid: Tid) {
        for s in &mut self.sinks {
            s.on_enter_function(t, func, fp, tid);
        }
    }
    fn on_exit_function(&mut self, t: Time, func: FuncId, tid: Tid) {
        for s in &mut self.sinks {
            s.on_exit_function(t, func, tid);
        }
    }
    fn on_block_entry(&mut self, t: Time, block: BlockId, tid: Tid) {
        for s in &mut self.sinks {
            s.on_block_entry(t, block, tid);
        }
    }
    fn on_predicate(&mut self, t: Time, pc: Pc, block: BlockId, taken: bool, tid: Tid) {
        for s in &mut self.sinks {
            s.on_predicate(t, pc, block, taken, tid);
        }
    }
    fn on_read(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        for s in &mut self.sinks {
            s.on_read(t, addr, pc, tid);
        }
    }
    fn on_write(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        for s in &mut self.sinks {
            s.on_write(t, addr, pc, tid);
        }
    }
    fn on_batch(&mut self, batch: &EventBatch) {
        // One dynamic dispatch per batch per consumer instead of one per
        // event per consumer — the fan-out's whole cost model.
        for s in &mut self.sinks {
            s.on_batch(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alchemist_vm::{CountingSink, RecordingSink};

    #[test]
    fn tee_feeds_both_sinks() {
        let mut tee = Tee(CountingSink::default(), RecordingSink::default());
        tee.on_read(0, 1, Pc(0), Tid::MAIN);
        tee.on_write(1, 1, Pc(1), Tid::MAIN);
        assert_eq!(tee.0.reads, 1);
        assert_eq!(tee.0.writes, 1);
        assert_eq!(tee.1.events.len(), 2);
    }

    #[test]
    fn tee_and_multi_sink_forward_whole_batches() {
        let mut batch = EventBatch::new();
        batch.push_read(0, 1, Pc(0), Tid::MAIN);
        batch.push_write(1, 2, Pc(1), Tid::MAIN);
        batch.push_block(2, BlockId(3), Tid::MAIN);

        let mut tee = Tee(CountingSink::default(), RecordingSink::default());
        tee.on_batch(&batch);
        assert_eq!(tee.0.reads + tee.0.writes + tee.0.blocks, 3);
        assert_eq!(tee.1.events.len(), 3);

        let mut a = CountingSink::default();
        let mut b = RecordingSink::default();
        let mut fan = MultiSink::new();
        fan.push(&mut a).push(&mut b);
        fan.on_batch(&batch);
        drop(fan);
        assert_eq!(a.reads, 1);
        assert_eq!(a.writes, 1);
        assert_eq!(b.events.len(), 3);
    }

    #[test]
    fn multi_sink_fans_out_in_order() {
        let mut a = CountingSink::default();
        let mut b = RecordingSink::default();
        let mut c = CountingSink::default();
        let mut fan = MultiSink::new();
        fan.push(&mut a).push(&mut b).push(&mut c);
        assert_eq!(fan.len(), 3);
        fan.on_predicate(5, Pc(2), BlockId(1), true, Tid::MAIN);
        fan.on_block_entry(6, BlockId(2), Tid::MAIN);
        drop(fan);
        assert_eq!(a.predicates, 1);
        assert_eq!(a.blocks, 1);
        assert_eq!(c.predicates, 1);
        assert_eq!(b.events.len(), 2);
    }
}
