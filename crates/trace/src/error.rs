//! Typed failures for trace encoding and decoding.
//!
//! Every way a trace file can be wrong maps to a distinct variant so
//! callers (and tests) can distinguish "not a trace at all" from "a trace
//! that was cut short". Decoding never panics on hostile bytes.

use std::error::Error;
use std::fmt;
use std::io;

/// Why reading or writing a trace failed.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The file does not start with the `ALCT` magic.
    BadMagic([u8; 4]),
    /// The file's format version is outside the range this reader
    /// understands. Carries enough context to tell the user exactly where
    /// the reader gave up: `chunk_index` is 0 when the header itself was
    /// rejected, or the index of the chunk being decoded otherwise.
    UnsupportedVersion {
        /// Version declared by the file.
        found: u16,
        /// Oldest version this reader accepts.
        min_supported: u16,
        /// Newest version this reader accepts.
        max_supported: u16,
        /// Chunk index at which the version was rejected (0 = header).
        chunk_index: u64,
    },
    /// The embedded source program is not valid UTF-8.
    CorruptSource(std::str::Utf8Error),
    /// The stream ended where the format promised more bytes.
    Truncated(&'static str),
    /// A structurally invalid value was decoded (context in the message).
    Malformed(&'static str),
    /// An event lead byte carried an undefined kind tag.
    BadEventTag(u8),
    /// A chunk declared a payload larger than the sanity limit, which on a
    /// corrupt file would otherwise trigger a giant allocation.
    ChunkTooLarge(u64),
    /// A v3 chunk's payload did not match its stored CRC-32: positive
    /// evidence of corruption (bit rot, torn write) rather than truncation.
    ChecksumMismatch {
        /// CRC stored in the chunk head.
        expected: u32,
        /// CRC computed over the payload as read.
        actual: u32,
        /// Index of the offending chunk (0-based, footer counts as one).
        chunk_index: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic(m) => {
                write!(f, "not an Alchemist trace (bad magic {m:02x?})")
            }
            TraceError::UnsupportedVersion {
                found,
                min_supported,
                max_supported,
                chunk_index,
            } => {
                write!(
                    f,
                    "unsupported trace format version {found} \
                     (supported {min_supported}..={max_supported}) at chunk {chunk_index}"
                )
            }
            TraceError::CorruptSource(e) => {
                write!(f, "embedded source is not UTF-8: {e}")
            }
            TraceError::Truncated(what) => write!(f, "truncated trace: {what}"),
            TraceError::Malformed(what) => write!(f, "malformed trace: {what}"),
            TraceError::BadEventTag(tag) => write!(f, "undefined event tag {tag}"),
            TraceError::ChunkTooLarge(n) => {
                write!(f, "chunk payload of {n} bytes exceeds the sanity limit")
            }
            TraceError::ChecksumMismatch {
                expected,
                actual,
                chunk_index,
            } => {
                write!(
                    f,
                    "corrupt trace: chunk {chunk_index} CRC mismatch \
                     (stored {expected:08x}, computed {actual:08x})"
                )
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::CorruptSource(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_problem() {
        assert!(TraceError::BadMagic(*b"GZIP")
            .to_string()
            .contains("bad magic"));
        let v = TraceError::UnsupportedVersion {
            found: 9,
            min_supported: 1,
            max_supported: 2,
            chunk_index: 0,
        }
        .to_string();
        assert!(v.contains("version 9"));
        assert!(v.contains("1..=2"));
        assert!(v.contains("chunk 0"));
        assert!(TraceError::Truncated("chunk payload")
            .to_string()
            .contains("chunk payload"));
        assert!(TraceError::BadEventTag(7).to_string().contains('7'));
        let c = TraceError::ChecksumMismatch {
            expected: 0xdead_beef,
            actual: 0x0bad_f00d,
            chunk_index: 3,
        }
        .to_string();
        assert!(c.contains("deadbeef"));
        assert!(c.contains("0badf00d"));
        assert!(c.contains("chunk 3"));
    }

    #[test]
    fn io_errors_convert() {
        let e: TraceError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(e, TraceError::Io(_)));
        assert!(e.source().is_some());
    }
}
