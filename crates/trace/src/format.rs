//! The `.alct` wire format: constants, codec state, per-event encoding.
//!
//! ## Layout
//!
//! ```text
//! file   := header chunk* footer
//! header := "ALCT" version:u16le flags:u16le [src_len:varint src:bytes]
//! chunk  := payload_len:varint event_count:varint t_first:varint
//!           t_span:varint payload:bytes
//! footer := a chunk with event_count == 0 whose payload is
//!           total_steps:varint
//! ```
//!
//! The `flags` word currently defines bit 0 (`FLAG_SOURCE`): the header
//! carries the mini-C source of the recorded program, which makes the trace
//! self-contained — replay can recompile the module and drive any analysis
//! without the original file.
//!
//! ## Chunks
//!
//! Chunks are self-delimiting (`payload_len` is the exact payload size) and
//! carry their own event count and absolute time range `[t_first, t_first +
//! t_span]`, so a reader can skip a chunk without decoding it — time
//! windowing and chunk-level statistics cost only header decodes. The
//! delta-codec state resets at every chunk boundary, which is what makes
//! chunks independently decodable.
//!
//! ## Events
//!
//! Each event starts with one lead byte: the kind tag in the low 3 bits and
//! an inline timestamp delta in the high 5 bits (values `0..=30`; `31`
//! escapes to an extension varint of `dt - 31`). Remaining fields are
//! zigzag-varint deltas against the previous value of the same field kind
//! within the chunk (previous address for addresses, previous pc for pcs,
//! and so on), so the hot sequential patterns — a scan through an array,
//! events from one code region — encode in one byte per field.

use crate::error::TraceError;
use crate::varint;
use alchemist_lang::hir::FuncId;
use alchemist_vm::{BlockId, Event, Pc, Tid};

/// File magic: the first four bytes of every trace.
pub const MAGIC: [u8; 4] = *b"ALCT";

/// Format version 1: the classic single-threaded layout. Still the default
/// for recording — every v1 producer keeps emitting byte-identical files.
pub const VERSION: u16 = 1;

/// Format version 2: identical to v1 except that each event-bearing chunk's
/// payload starts with a *thread-id column* — `event_count` zigzag-varint
/// deltas against the previous tid (starting from 0 at every chunk
/// boundary) — followed by the unchanged v1 event stream.
pub const VERSION_V2: u16 = 2;

/// Format version 3: the v2 layout plus a 4-byte little-endian CRC-32
/// (IEEE) of the payload, written between the four chunk-head varints and
/// the payload itself. `payload_len` does *not* include the CRC word. The
/// footer chunk is checksummed the same way. The CRC detects corruption
/// positively, which is what makes salvage replay (`--recover`) able to
/// skip a damaged chunk and resynchronise at the next one.
pub const VERSION_V3: u16 = 3;

/// Oldest version this reader decodes.
pub const MIN_VERSION: u16 = VERSION;

/// Newest version this reader decodes.
pub const MAX_VERSION: u16 = VERSION_V3;

/// Header flag: the mini-C source is embedded after the flags word.
pub const FLAG_SOURCE: u16 = 1 << 0;

/// All flag bits this version defines; others must be zero.
pub const KNOWN_FLAGS: u16 = FLAG_SOURCE;

/// Sanity cap on one chunk's payload (a corrupt length field must not
/// trigger a multi-gigabyte allocation).
pub const MAX_CHUNK_BYTES: u64 = 64 << 20;

/// Sanity cap on the embedded source size.
pub const MAX_SOURCE_BYTES: u64 = 16 << 20;

/// Largest timestamp delta carried inline in the lead byte.
const DT_INLINE_MAX: u64 = 30;
/// Lead-byte dt field value that escapes to an extension varint.
const DT_ESCAPE: u8 = 31;

const TAG_ENTER: u8 = 0;
const TAG_EXIT: u8 = 1;
const TAG_BLOCK: u8 = 2;
const TAG_PRED_NOT_TAKEN: u8 = 3;
const TAG_PRED_TAKEN: u8 = 4;
const TAG_READ: u8 = 5;
const TAG_WRITE: u8 = 6;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `data` —
/// the checksum v3 chunks carry. Table-driven, one table built at compile
/// time; matches the ubiquitous zlib/`cksum -o 3` definition so external
/// tools can verify chunks independently.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_concat(data, &[])
}

/// [`crc32`] over the concatenation `a ++ b`, without materialising it —
/// the writer checksums the tid column and event stream as one payload.
pub fn crc32_concat(a: &[u8], b: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &byte in a.iter().chain(b) {
        crc = TABLE[((crc ^ u32::from(byte)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Per-chunk delta-codec state, identical on both sides of the wire.
#[derive(Debug, Clone, Copy)]
pub struct CodecState {
    prev_t: u64,
    prev_func: u32,
    prev_fp: u32,
    prev_block: u32,
    prev_pc: u32,
    prev_addr: u32,
}

impl CodecState {
    /// Fresh state for a chunk whose first event occurs at `t_first`.
    pub fn new(t_first: u64) -> Self {
        CodecState {
            prev_t: t_first,
            prev_func: 0,
            prev_fp: 0,
            prev_block: 0,
            prev_pc: 0,
            prev_addr: 0,
        }
    }
}

fn delta32(prev: &mut u32, new: u32) -> i64 {
    let d = i64::from(new) - i64::from(*prev);
    *prev = new;
    d
}

fn apply32(prev: &mut u32, delta: i64, what: &'static str) -> Result<u32, TraceError> {
    let v = i64::from(*prev)
        .checked_add(delta)
        .filter(|v| (0..=i64::from(u32::MAX)).contains(v))
        .ok_or(TraceError::Malformed(what))?;
    *prev = v as u32;
    Ok(v as u32)
}

/// Appends the encoding of `ev` to `out`, updating `state`.
///
/// Timestamps must be non-decreasing within a chunk (the interpreter's
/// retired-instruction clock guarantees this for live recording).
pub fn encode_event(state: &mut CodecState, ev: &Event, out: &mut Vec<u8>) {
    let t = ev.time();
    debug_assert!(t >= state.prev_t, "timestamps must not run backwards");
    let dt = t.saturating_sub(state.prev_t);
    state.prev_t = t;

    let (tag, inline_dt) = {
        let tag = match ev {
            Event::Enter { .. } => TAG_ENTER,
            Event::Exit { .. } => TAG_EXIT,
            Event::Block { .. } => TAG_BLOCK,
            Event::Predicate { taken: false, .. } => TAG_PRED_NOT_TAKEN,
            Event::Predicate { taken: true, .. } => TAG_PRED_TAKEN,
            Event::Read { .. } => TAG_READ,
            Event::Write { .. } => TAG_WRITE,
        };
        if dt <= DT_INLINE_MAX {
            (tag, dt as u8)
        } else {
            (tag, DT_ESCAPE)
        }
    };
    out.push(tag | (inline_dt << 3));
    if inline_dt == DT_ESCAPE {
        varint::write_u64(out, dt - DT_INLINE_MAX - 1);
    }

    match *ev {
        Event::Enter { func, fp, .. } => {
            varint::write_i64(out, delta32(&mut state.prev_func, func.0));
            varint::write_i64(out, delta32(&mut state.prev_fp, fp));
        }
        Event::Exit { func, .. } => {
            varint::write_i64(out, delta32(&mut state.prev_func, func.0));
        }
        Event::Block { block, .. } => {
            varint::write_i64(out, delta32(&mut state.prev_block, block.0));
        }
        Event::Predicate { pc, block, .. } => {
            varint::write_i64(out, delta32(&mut state.prev_pc, pc.0));
            varint::write_i64(out, delta32(&mut state.prev_block, block.0));
        }
        Event::Read { addr, pc, .. } | Event::Write { addr, pc, .. } => {
            varint::write_i64(out, delta32(&mut state.prev_addr, addr));
            varint::write_i64(out, delta32(&mut state.prev_pc, pc.0));
        }
    }
}

/// Decodes one event from `buf[*pos..]`, advancing `*pos` and `state`.
///
/// The event codec is tid-agnostic: decoded events come out on
/// [`Tid::MAIN`], and v2 readers restamp them from the chunk's thread-id
/// column ([`decode_tid_column`]).
///
/// # Errors
///
/// [`TraceError::Truncated`] when the chunk ends mid-event,
/// [`TraceError::BadEventTag`] on an undefined kind tag, and
/// [`TraceError::Malformed`] when a delta walks a field out of range.
pub fn decode_event(
    state: &mut CodecState,
    buf: &[u8],
    pos: &mut usize,
) -> Result<Event, TraceError> {
    let Some(&lead) = buf.get(*pos) else {
        return Err(TraceError::Truncated("event lead byte"));
    };
    *pos += 1;
    let tag = lead & 0x07;
    let inline_dt = lead >> 3;
    let dt = if inline_dt == DT_ESCAPE {
        let ext = varint::read_u64(buf, pos)?;
        ext.checked_add(DT_INLINE_MAX + 1)
            .ok_or(TraceError::Malformed("timestamp delta overflows u64"))?
    } else {
        u64::from(inline_dt)
    };
    let t = state
        .prev_t
        .checked_add(dt)
        .ok_or(TraceError::Malformed("timestamp overflows u64"))?;
    state.prev_t = t;

    match tag {
        TAG_ENTER => {
            let dfunc = varint::read_i64(buf, pos)?;
            let dfp = varint::read_i64(buf, pos)?;
            let func = apply32(&mut state.prev_func, dfunc, "function id out of range")?;
            let fp = apply32(&mut state.prev_fp, dfp, "frame pointer out of range")?;
            Ok(Event::Enter {
                t,
                func: FuncId(func),
                fp,
                tid: Tid::MAIN,
            })
        }
        TAG_EXIT => {
            let dfunc = varint::read_i64(buf, pos)?;
            let func = apply32(&mut state.prev_func, dfunc, "function id out of range")?;
            Ok(Event::Exit {
                t,
                func: FuncId(func),
                tid: Tid::MAIN,
            })
        }
        TAG_BLOCK => {
            let dblock = varint::read_i64(buf, pos)?;
            let block = apply32(&mut state.prev_block, dblock, "block id out of range")?;
            Ok(Event::Block {
                t,
                block: BlockId(block),
                tid: Tid::MAIN,
            })
        }
        TAG_PRED_NOT_TAKEN | TAG_PRED_TAKEN => {
            let dpc = varint::read_i64(buf, pos)?;
            let dblock = varint::read_i64(buf, pos)?;
            let pc = apply32(&mut state.prev_pc, dpc, "pc out of range")?;
            let block = apply32(&mut state.prev_block, dblock, "block id out of range")?;
            Ok(Event::Predicate {
                t,
                pc: Pc(pc),
                block: BlockId(block),
                taken: tag == TAG_PRED_TAKEN,
                tid: Tid::MAIN,
            })
        }
        TAG_READ | TAG_WRITE => {
            let daddr = varint::read_i64(buf, pos)?;
            let dpc = varint::read_i64(buf, pos)?;
            let addr = apply32(&mut state.prev_addr, daddr, "address out of range")?;
            let pc = apply32(&mut state.prev_pc, dpc, "pc out of range")?;
            if tag == TAG_READ {
                Ok(Event::Read {
                    t,
                    addr,
                    pc: Pc(pc),
                    tid: Tid::MAIN,
                })
            } else {
                Ok(Event::Write {
                    t,
                    addr,
                    pc: Pc(pc),
                    tid: Tid::MAIN,
                })
            }
        }
        other => Err(TraceError::BadEventTag(other)),
    }
}

/// Appends a v2 thread-id column to `out`: one zigzag-varint delta per
/// entry against the previous tid, starting from 0 (the codec resets at
/// every chunk boundary, like [`CodecState`]). Runs of same-thread events —
/// the common case under quantum scheduling — encode as one zero byte each.
pub fn encode_tid_column(tids: &[u32], out: &mut Vec<u8>) {
    let mut prev: u32 = 0;
    for &tid in tids {
        varint::write_i64(out, i64::from(tid) - i64::from(prev));
        prev = tid;
    }
}

/// Decodes a v2 thread-id column of `count` entries from `buf[*pos..]`
/// into `out` (cleared first), advancing `*pos`.
///
/// # Errors
///
/// [`TraceError::Truncated`] when the chunk ends mid-column and
/// [`TraceError::Malformed`] when a delta walks the tid out of `u32` range.
pub fn decode_tid_column(
    buf: &[u8],
    pos: &mut usize,
    count: usize,
    out: &mut Vec<u32>,
) -> Result<(), TraceError> {
    out.clear();
    out.reserve(count);
    let mut prev: u32 = 0;
    for _ in 0..count {
        let d = varint::read_i64(buf, pos)?;
        let v = i64::from(prev)
            .checked_add(d)
            .filter(|v| (0..=i64::from(u32::MAX)).contains(v))
            .ok_or(TraceError::Malformed("thread id out of range"))?;
        prev = v as u32;
        out.push(prev);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Enter {
                t: 0,
                func: FuncId(0),
                fp: 16,
                tid: Tid::MAIN,
            },
            Event::Block {
                t: 1,
                block: BlockId(3),
                tid: Tid::MAIN,
            },
            Event::Predicate {
                t: 2,
                pc: Pc(40),
                block: BlockId(3),
                taken: true,
                tid: Tid::MAIN,
            },
            Event::Read {
                t: 3,
                addr: 100,
                pc: Pc(41),
                tid: Tid::MAIN,
            },
            Event::Write {
                t: 4,
                addr: 101,
                pc: Pc(42),
                tid: Tid::MAIN,
            },
            Event::Read {
                t: 1000,
                addr: 5,
                pc: Pc(7),
                tid: Tid::MAIN,
            },
            Event::Exit {
                t: 1001,
                func: FuncId(0),
                tid: Tid::MAIN,
            },
        ]
    }

    #[test]
    fn events_roundtrip_through_the_codec() {
        let events = sample_events();
        let mut enc = CodecState::new(events[0].time());
        let mut buf = Vec::new();
        for e in &events {
            encode_event(&mut enc, e, &mut buf);
        }
        let mut dec = CodecState::new(events[0].time());
        let mut pos = 0;
        let decoded: Vec<Event> = (0..events.len())
            .map(|_| decode_event(&mut dec, &buf, &mut pos).unwrap())
            .collect();
        assert_eq!(decoded, events);
        assert_eq!(pos, buf.len(), "no trailing bytes");
    }

    #[test]
    fn adjacent_accesses_encode_in_three_bytes() {
        // dt=1, addr +1, pc 0 from the previous access: the hot pattern.
        let mut enc = CodecState::new(0);
        let mut buf = Vec::new();
        encode_event(
            &mut enc,
            &Event::Read {
                t: 0,
                addr: 0,
                pc: Pc(0),
                tid: Tid::MAIN,
            },
            &mut buf,
        );
        let before = buf.len();
        encode_event(
            &mut enc,
            &Event::Read {
                t: 1,
                addr: 1,
                pc: Pc(0),
                tid: Tid::MAIN,
            },
            &mut buf,
        );
        assert_eq!(buf.len() - before, 3);
    }

    #[test]
    fn large_dt_uses_the_escape() {
        let mut enc = CodecState::new(0);
        let mut buf = Vec::new();
        let ev = Event::Block {
            t: 1 << 40,
            block: BlockId(0),
            tid: Tid::MAIN,
        };
        encode_event(&mut enc, &ev, &mut buf);
        let mut dec = CodecState::new(0);
        let mut pos = 0;
        assert_eq!(decode_event(&mut dec, &buf, &mut pos).unwrap(), ev);
    }

    #[test]
    fn tid_column_roundtrips_mixed_threads() {
        let tids = [0u32, 0, 1, 1, 2, 0, 7, 7, 3, u32::MAX];
        let mut buf = Vec::new();
        encode_tid_column(&tids, &mut buf);
        let mut pos = 0;
        let mut out = Vec::new();
        decode_tid_column(&buf, &mut pos, tids.len(), &mut out).unwrap();
        assert_eq!(out, tids);
        assert_eq!(pos, buf.len(), "no trailing bytes");
    }

    #[test]
    fn all_main_tid_column_is_one_byte_per_event() {
        let tids = [0u32; 16];
        let mut buf = Vec::new();
        encode_tid_column(&tids, &mut buf);
        assert_eq!(buf.len(), 16);
    }

    #[test]
    fn truncated_tid_column_is_a_typed_error() {
        let tids = [5u32, 6, 7];
        let mut buf = Vec::new();
        encode_tid_column(&tids, &mut buf);
        let mut pos = 0;
        let mut out = Vec::new();
        assert!(matches!(
            decode_tid_column(&buf[..buf.len() - 1], &mut pos, tids.len(), &mut out),
            Err(TraceError::Truncated(_))
        ));
    }

    #[test]
    fn negative_tid_delta_underflow_is_a_typed_error() {
        // A lone delta of -1 would take the running tid below zero.
        let mut buf = Vec::new();
        varint::write_i64(&mut buf, -1);
        let mut pos = 0;
        let mut out = Vec::new();
        assert!(matches!(
            decode_tid_column(&buf, &mut pos, 1, &mut out),
            Err(TraceError::Malformed(_))
        ));
    }

    #[test]
    fn crc32_matches_the_ieee_reference_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // One flipped bit must change the sum.
        assert_ne!(crc32(b"alchemist"), crc32(b"alchemisu"));
        // The concat form equals a CRC over the joined bytes.
        assert_eq!(crc32_concat(b"12345", b"6789"), crc32(b"123456789"));
        assert_eq!(crc32_concat(b"", b"123456789"), crc32(b"123456789"));
    }

    #[test]
    fn bad_tag_is_a_typed_error() {
        // Tag 7 is undefined; dt bits zero.
        let mut dec = CodecState::new(0);
        let mut pos = 0;
        assert!(matches!(
            decode_event(&mut dec, &[0x07], &mut pos),
            Err(TraceError::BadEventTag(7))
        ));
    }

    #[test]
    fn truncated_event_is_a_typed_error() {
        let mut enc = CodecState::new(0);
        let mut buf = Vec::new();
        encode_event(
            &mut enc,
            &Event::Read {
                t: 0,
                addr: 1 << 20,
                pc: Pc(9000),
                tid: Tid::MAIN,
            },
            &mut buf,
        );
        let mut dec = CodecState::new(0);
        let mut pos = 0;
        assert!(matches!(
            decode_event(&mut dec, &buf[..buf.len() - 1], &mut pos),
            Err(TraceError::Truncated(_))
        ));
    }
}
