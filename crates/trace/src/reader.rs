//! Replay: a [`TraceReader`] decodes a recorded trace back into the exact
//! event stream the interpreter produced, either one event at a time
//! (`Iterator`), all at once into a sink ([`TraceReader::replay_into`]), or
//! windowed by time with whole-chunk skipping
//! ([`TraceReader::replay_window`]).

use crate::error::TraceError;
use crate::format::{self, CodecState};
use crate::varint;
use alchemist_obs::{Counter, Metrics};
use alchemist_vm::{Event, EventBatch, Tid, TraceSink};
use std::io::Read;
use std::sync::Arc;

/// Chunk-level metadata, decodable without touching the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Events in the chunk.
    pub events: u64,
    /// Timestamp of the chunk's first event.
    pub t_first: u64,
    /// Timestamp of the chunk's last event.
    pub t_last: u64,
    /// Encoded payload size in bytes.
    pub payload_bytes: u64,
}

/// One event-bearing chunk with its payload still encoded: the unit of
/// work for parallel decode ([`decode_events_par`](crate::decode_events_par)).
///
/// The delta codec resets at every chunk boundary ([`CodecState::new`]
/// seeded with `t_first`), so a `RawChunk` decodes independently of every
/// other chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawChunk {
    /// Events in the chunk.
    pub events: u64,
    /// Timestamp of the chunk's first event (seeds the codec state).
    pub t_first: u64,
    /// Trace format version the payload was encoded under. v2 payloads
    /// open with a thread-id column before the event stream.
    pub version: u16,
    /// The still-encoded payload.
    pub payload: Vec<u8>,
}

/// What a full replay delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Events dispatched to the sink.
    pub events: u64,
    /// The recorded run's total retired-instruction count (from the
    /// footer); this is what profile finalization needs.
    pub total_steps: u64,
}

struct ChunkHeader {
    payload_len: u64,
    events: u64,
    t_first: u64,
    t_span: u64,
    /// Stored payload CRC-32 (v3 traces only).
    crc: Option<u32>,
}

/// What salvage replay (`--recover`) had to work around, and what it saved.
///
/// Produced by [`TraceReader::read_raw_chunks_recover`] /
/// [`TraceReader::read_chunk_infos_recover`] (and refined by
/// [`decode_batches_par_recover`](crate::decode_batches_par_recover), which
/// also drops chunks whose *payloads* fail to decode). A report with
/// [`RecoveryReport::is_clean`] `== true` means the salvaged result is
/// exactly what a normal replay would have produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Event-bearing chunks seen in the stream, good and bad.
    pub chunks_total: u64,
    /// Chunks dropped (bad CRC, truncated, or undecodable payload).
    pub chunks_skipped: u64,
    /// Events delivered from surviving chunks.
    pub events_salvaged: u64,
    /// Events declared by dropped chunks (lower bound on what was lost).
    pub events_lost: u64,
    /// Byte offset of the first chunk that failed, if any failed.
    pub first_bad_offset: Option<u64>,
    /// The stream ended mid-chunk (or on a hard I/O error): everything
    /// after `first_bad_offset` was abandoned.
    pub truncated_tail: bool,
    /// The footer was read intact; `total_steps` is exact, not estimated.
    pub footer_recovered: bool,
    /// Chunks whose stored CRC-32 did not match their payload (v3 only).
    pub crc_mismatches: u64,
    /// Chunks lost to truncation (stream ended inside header or payload).
    pub truncations: u64,
    /// Chunks lost to payload/structural decode errors.
    pub decode_errors: u64,
}

impl RecoveryReport {
    /// `true` when nothing was skipped, the tail was intact and the footer
    /// was read — i.e. salvage degenerated to a normal full replay.
    pub fn is_clean(&self) -> bool {
        self.chunks_skipped == 0
            && !self.truncated_tail
            && self.footer_recovered
            && self.decode_errors == 0
    }

    /// Folds one failed chunk into the tallies (shared by the scan and the
    /// decode layers; the decode layer no longer knows file offsets, so
    /// `offset` is optional).
    pub(crate) fn record_failure(&mut self, err: &TraceError, events: u64, offset: Option<u64>) {
        self.chunks_skipped += 1;
        self.events_lost += events;
        if self.first_bad_offset.is_none() {
            self.first_bad_offset = offset;
        }
        match err {
            TraceError::ChecksumMismatch { .. } => self.crc_mismatches += 1,
            TraceError::Truncated(_) | TraceError::Io(_) => self.truncations += 1,
            _ => self.decode_errors += 1,
        }
    }
}

/// A [`Read`] adapter that tracks the absolute byte offset, so salvage can
/// report *where* a trace went bad.
#[derive(Debug)]
struct Counting<R> {
    inner: R,
    offset: u64,
}

impl<R: Read> Read for Counting<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.offset += n as u64;
        Ok(n)
    }
}

/// Streaming decoder for `.alct` traces.
///
/// Iterating yields `Result<Event, TraceError>`; any corruption surfaces
/// as a typed error, never a panic. Use one access mode per reader —
/// event iteration, [`TraceReader::replay_into`],
/// [`TraceReader::replay_window`], [`TraceReader::read_chunk_infos`], or
/// [`TraceReader::read_raw_chunks`] — since all of them advance the same
/// underlying stream.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: Counting<R>,
    version: u16,
    source: Option<String>,
    /// Payload of the chunk being decoded.
    chunk: Vec<u8>,
    pos: usize,
    remaining: u64,
    /// Thread id per event of the chunk being decoded (v2 only).
    chunk_tids: Vec<u32>,
    /// Next index into `chunk_tids`.
    tid_idx: usize,
    state: CodecState,
    total_steps: Option<u64>,
    finished: bool,
    events_read: u64,
    /// Chunk headers read so far (context for checksum errors).
    chunks_seen: u64,
    metrics: Option<Arc<Metrics>>,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, validating magic, version and header flags.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`] / [`TraceError::UnsupportedVersion`] for
    /// foreign files, [`TraceError::Truncated`] for streams cut inside the
    /// header, [`TraceError::CorruptSource`] if the embedded program is not
    /// UTF-8.
    pub fn new(input: R) -> Result<Self, TraceError> {
        let mut input = Counting {
            inner: input,
            offset: 0,
        };
        let mut magic = [0u8; 4];
        read_exact_or(&mut input, &mut magic, "header magic")?;
        if magic != format::MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        let mut word = [0u8; 2];
        read_exact_or(&mut input, &mut word, "header version")?;
        let version = u16::from_le_bytes(word);
        if !(format::MIN_VERSION..=format::MAX_VERSION).contains(&version) {
            return Err(TraceError::UnsupportedVersion {
                found: version,
                min_supported: format::MIN_VERSION,
                max_supported: format::MAX_VERSION,
                chunk_index: 0,
            });
        }
        read_exact_or(&mut input, &mut word, "header flags")?;
        let flags = u16::from_le_bytes(word);
        if flags & !format::KNOWN_FLAGS != 0 {
            return Err(TraceError::Malformed("unknown header flag bits"));
        }
        let source = if flags & format::FLAG_SOURCE != 0 {
            let len =
                varint::read_u64_from(&mut input)?.ok_or(TraceError::Truncated("source length"))?;
            if len > format::MAX_SOURCE_BYTES {
                return Err(TraceError::ChunkTooLarge(len));
            }
            let mut bytes = vec![0u8; len as usize];
            read_exact_or(&mut input, &mut bytes, "embedded source")?;
            Some(String::from_utf8(bytes).map_err(|e| TraceError::CorruptSource(e.utf8_error()))?)
        } else {
            None
        };
        Ok(TraceReader {
            input,
            version,
            source,
            chunk: Vec::new(),
            pos: 0,
            remaining: 0,
            chunk_tids: Vec::new(),
            tid_idx: 0,
            state: CodecState::new(0),
            total_steps: None,
            finished: false,
            events_read: 0,
            chunks_seen: 0,
            metrics: None,
        })
    }

    /// Attaches a metrics sink: streaming decode counts each loaded chunk
    /// and its payload bytes, and folds the total decoded event count in at
    /// the footer. Costs a couple of atomic adds per chunk, nothing per
    /// event. (Chunk-parallel decode records through
    /// [`decode_batches_par_with`](crate::decode_batches_par_with) instead.)
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The trace format version.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The embedded mini-C source, if the trace carries one.
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// The recorded run's step count. Available once the footer has been
    /// reached (after a full replay or iteration to the end).
    pub fn total_steps(&self) -> Option<u64> {
        self.total_steps
    }

    /// Events decoded so far.
    pub fn events_read(&self) -> u64 {
        self.events_read
    }

    fn read_chunk_header(&mut self) -> Result<Option<ChunkHeader>, TraceError> {
        let Some(payload_len) = varint::read_u64_from(&mut self.input)? else {
            return Ok(None);
        };
        let need = |v: Result<Option<u64>, TraceError>| {
            v.and_then(|o| o.ok_or(TraceError::Truncated("chunk header")))
        };
        let events = need(varint::read_u64_from(&mut self.input))?;
        let t_first = need(varint::read_u64_from(&mut self.input))?;
        let t_span = need(varint::read_u64_from(&mut self.input))?;
        let crc = if self.version >= format::VERSION_V3 {
            let mut word = [0u8; 4];
            read_exact_or(&mut self.input, &mut word, "chunk crc")?;
            Some(u32::from_le_bytes(word))
        } else {
            None
        };
        if payload_len > format::MAX_CHUNK_BYTES {
            return Err(TraceError::ChunkTooLarge(payload_len));
        }
        // Every event is at least one byte, so this bounds hostile counts.
        if events > payload_len {
            return Err(TraceError::Malformed("event count exceeds payload size"));
        }
        self.chunks_seen += 1;
        Ok(Some(ChunkHeader {
            payload_len,
            events,
            t_first,
            t_span,
            crc,
        }))
    }

    /// Reads a chunk's payload into `self.chunk` and, on v3 traces,
    /// verifies it against the stored CRC-32.
    fn read_payload(&mut self, head: &ChunkHeader) -> Result<(), TraceError> {
        self.chunk.resize(head.payload_len as usize, 0);
        read_exact_or(&mut self.input, &mut self.chunk, "chunk payload")?;
        if let Some(expected) = head.crc {
            let actual = format::crc32(&self.chunk);
            if actual != expected {
                return Err(TraceError::ChecksumMismatch {
                    expected,
                    actual,
                    chunk_index: self.chunks_seen - 1,
                });
            }
        }
        Ok(())
    }

    /// Handles a footer chunk; returns the decoded step count.
    fn read_footer(&mut self, head: &ChunkHeader) -> Result<u64, TraceError> {
        self.read_payload(head)?;
        let mut pos = 0;
        let steps = varint::read_u64(&self.chunk, &mut pos)?;
        if pos != self.chunk.len() {
            return Err(TraceError::Malformed("trailing bytes in footer"));
        }
        // The footer must be the last thing in the stream.
        let mut probe = [0u8; 1];
        match self.input.read(&mut probe) {
            Ok(0) => {}
            Ok(_) => return Err(TraceError::Malformed("data after footer")),
            Err(e) => return Err(e.into()),
        }
        self.total_steps = Some(steps);
        self.finished = true;
        if let Some(m) = &self.metrics {
            m.add(Counter::TraceEventsDecoded, self.events_read);
        }
        Ok(steps)
    }

    /// Loads the next event-bearing chunk. Returns `false` at end of trace.
    fn load_next_chunk(&mut self) -> Result<bool, TraceError> {
        let Some(head) = self.read_chunk_header()? else {
            return Err(TraceError::Truncated("missing footer"));
        };
        if head.events == 0 {
            self.read_footer(&head)?;
            return Ok(false);
        }
        self.read_payload(&head)?;
        if let Some(m) = &self.metrics {
            m.incr(Counter::TraceChunksDecoded);
            m.add(Counter::TraceBytesDecoded, head.payload_len);
        }
        self.pos = 0;
        if self.version >= format::VERSION_V2 {
            let n = head.events as usize;
            format::decode_tid_column(&self.chunk, &mut self.pos, n, &mut self.chunk_tids)?;
        }
        self.tid_idx = 0;
        self.remaining = head.events;
        self.state = CodecState::new(head.t_first);
        Ok(true)
    }

    /// Decodes the next event, or `None` at the (well-formed) end.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] the stream produces; after an error the reader
    /// should be discarded.
    pub fn next_event(&mut self) -> Result<Option<Event>, TraceError> {
        loop {
            if self.remaining > 0 {
                let mut ev = format::decode_event(&mut self.state, &self.chunk, &mut self.pos)?;
                if self.version >= format::VERSION_V2 {
                    ev = ev.with_tid(Tid(self.chunk_tids[self.tid_idx]));
                    self.tid_idx += 1;
                }
                self.remaining -= 1;
                if self.remaining == 0 && self.pos != self.chunk.len() {
                    return Err(TraceError::Malformed("trailing bytes in chunk"));
                }
                self.events_read += 1;
                return Ok(Some(ev));
            }
            if self.finished {
                return Ok(None);
            }
            if !self.load_next_chunk()? {
                return Ok(None);
            }
        }
    }

    /// Replays every event into `sink`, in recorded order.
    ///
    /// Feeding an [`AlchemistProfiler`-style] sink here is equivalent to
    /// running it live on the interpreter: same calls, same timestamps.
    ///
    /// [`AlchemistProfiler`-style]: alchemist_vm::TraceSink
    ///
    /// # Errors
    ///
    /// Any decode error; events already delivered are not rolled back.
    pub fn replay_into<S: TraceSink + ?Sized>(
        &mut self,
        sink: &mut S,
    ) -> Result<ReplaySummary, TraceError> {
        let mut events = 0;
        while let Some(ev) = self.next_event()? {
            ev.dispatch(sink);
            events += 1;
        }
        Ok(ReplaySummary {
            events,
            total_steps: self
                .total_steps
                .ok_or(TraceError::Truncated("missing footer"))?,
        })
    }

    /// Decodes up to `max` events (minimum 1) directly into `batch`,
    /// clearing it first and crossing chunk boundaries as needed — no
    /// intermediate `Vec<Event>` is materialized. Returns `false` once the
    /// trace is exhausted and the batch stayed empty.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] the stream produces; rows already decoded into
    /// `batch` are not rolled back.
    pub fn read_batch(&mut self, batch: &mut EventBatch, max: usize) -> Result<bool, TraceError> {
        batch.clear();
        let max = max.max(1);
        while batch.len() < max {
            match self.next_event()? {
                Some(ev) => batch.push_event(&ev),
                None => break,
            }
        }
        Ok(!batch.is_empty())
    }

    /// Replays the whole trace into `sink` in blocks of `batch_size`
    /// events, one [`TraceSink::on_batch`] call per block.
    ///
    /// Delivers exactly the stream [`TraceReader::replay_into`] would —
    /// batch-unaware sinks observe identical per-event callbacks via the
    /// trait default — while batch-aware sinks pay one virtual call per
    /// block. One `EventBatch` is reused for every block.
    ///
    /// # Errors
    ///
    /// Any decode error; blocks already delivered are not rolled back.
    pub fn replay_batched_into<S: TraceSink + ?Sized>(
        &mut self,
        sink: &mut S,
        batch_size: usize,
    ) -> Result<ReplaySummary, TraceError> {
        let mut batch = EventBatch::with_capacity(batch_size.max(1));
        let mut events = 0;
        while self.read_batch(&mut batch, batch_size)? {
            events += batch.len() as u64;
            sink.on_batch(&batch);
        }
        Ok(ReplaySummary {
            events,
            total_steps: self
                .total_steps
                .ok_or(TraceError::Truncated("missing footer"))?,
        })
    }

    /// Replays only events with `t_lo <= t <= t_hi`, skipping the decode of
    /// every chunk whose time range lies outside the window. Returns the
    /// number of events delivered.
    ///
    /// # Errors
    ///
    /// Any decode error encountered in chunks that must be read.
    pub fn replay_window<S: TraceSink + ?Sized>(
        &mut self,
        t_lo: u64,
        t_hi: u64,
        sink: &mut S,
    ) -> Result<u64, TraceError> {
        let mut delivered = 0;
        loop {
            let Some(head) = self.read_chunk_header()? else {
                return Err(TraceError::Truncated("missing footer"));
            };
            if head.events == 0 {
                self.read_footer(&head)?;
                return Ok(delivered);
            }
            let t_last = head.t_first.saturating_add(head.t_span);
            self.read_payload(&head)?;
            if t_last < t_lo || head.t_first > t_hi {
                continue; // skip: payload consumed but never decoded
            }
            self.pos = 0;
            if self.version >= format::VERSION_V2 {
                let n = head.events as usize;
                format::decode_tid_column(&self.chunk, &mut self.pos, n, &mut self.chunk_tids)?;
            }
            self.state = CodecState::new(head.t_first);
            for i in 0..head.events {
                let mut ev = format::decode_event(&mut self.state, &self.chunk, &mut self.pos)?;
                if self.version >= format::VERSION_V2 {
                    ev = ev.with_tid(Tid(self.chunk_tids[i as usize]));
                }
                let t = ev.time();
                if t_lo <= t && t <= t_hi {
                    ev.dispatch(sink);
                    delivered += 1;
                }
            }
            if self.pos != self.chunk.len() {
                return Err(TraceError::Malformed("trailing bytes in chunk"));
            }
        }
    }

    /// Reads every event-bearing chunk *without decoding the payloads*,
    /// returning them alongside the footer's step count. Consumes the
    /// reader's stream.
    ///
    /// This is the fan-out point for parallel replay: the sequential part
    /// (I/O plus header parsing) is a fraction of the decode cost, and the
    /// returned chunks decode independently on worker threads.
    ///
    /// # Errors
    ///
    /// Structural errors only; payload corruption surfaces later, when a
    /// chunk is decoded.
    pub fn read_raw_chunks(&mut self) -> Result<(Vec<RawChunk>, u64), TraceError> {
        let mut chunks = Vec::new();
        loop {
            let Some(head) = self.read_chunk_header()? else {
                return Err(TraceError::Truncated("missing footer"));
            };
            if head.events == 0 {
                let total_steps = self.read_footer(&head)?;
                return Ok((chunks, total_steps));
            }
            self.read_payload(&head)?;
            chunks.push(RawChunk {
                events: head.events,
                t_first: head.t_first,
                version: self.version,
                payload: std::mem::take(&mut self.chunk),
            });
        }
    }

    /// Reads chunk metadata for the whole trace without decoding any
    /// payload. Consumes the reader's stream.
    ///
    /// # Errors
    ///
    /// Structural errors only; payload corruption is invisible here.
    pub fn read_chunk_infos(&mut self) -> Result<Vec<ChunkInfo>, TraceError> {
        let mut infos = Vec::new();
        loop {
            let Some(head) = self.read_chunk_header()? else {
                return Err(TraceError::Truncated("missing footer"));
            };
            if head.events == 0 {
                self.read_footer(&head)?;
                return Ok(infos);
            }
            self.read_payload(&head)?;
            infos.push(ChunkInfo {
                events: head.events,
                t_first: head.t_first,
                t_last: head.t_first.saturating_add(head.t_span),
                payload_bytes: head.payload_len,
            });
        }
    }

    /// Shared salvage walk: visits every intact event-bearing chunk,
    /// absorbing failures into a [`RecoveryReport`] instead of propagating
    /// them. Stops at damage it cannot resynchronise past (a mangled chunk
    /// header, a truncated payload, a hard I/O error); a v3 CRC mismatch is
    /// skippable because the payload length is still trusted. Returns the
    /// footer's step count, or an estimate from the last seen chunk's time
    /// range when the footer is missing.
    fn recover_scan(
        &mut self,
        mut on_chunk: impl FnMut(&ChunkHeader, &mut Vec<u8>, u16),
    ) -> (u64, RecoveryReport) {
        let mut report = RecoveryReport::default();
        let mut last_t_end: Option<u64> = None;
        loop {
            let chunk_start = self.input.offset;
            let head = match self.read_chunk_header() {
                Ok(Some(head)) => head,
                // Clean EOF at a chunk boundary: the footer never made it.
                Ok(None) => break,
                Err(err) => {
                    // A damaged header leaves no trustworthy payload length
                    // to resynchronise over; abandon the tail.
                    report.record_failure(&err, 0, Some(chunk_start));
                    report.truncated_tail = true;
                    break;
                }
            };
            if head.events == 0 {
                match self.read_footer(&head) {
                    Ok(steps) => {
                        report.footer_recovered = true;
                        return (steps, report);
                    }
                    Err(err) => {
                        report.record_failure(&err, 0, Some(chunk_start));
                        break;
                    }
                }
            }
            report.chunks_total += 1;
            let t_end = head.t_first.saturating_add(head.t_span);
            last_t_end = Some(last_t_end.map_or(t_end, |t: u64| t.max(t_end)));
            match self.read_payload(&head) {
                Ok(()) => {
                    report.events_salvaged += head.events;
                    on_chunk(&head, &mut self.chunk, self.version);
                }
                Err(err) => {
                    let resynced = matches!(err, TraceError::ChecksumMismatch { .. });
                    report.record_failure(&err, head.events, Some(chunk_start));
                    if resynced {
                        continue; // payload fully consumed: next chunk is in sync
                    }
                    report.truncated_tail = true;
                    break;
                }
            }
        }
        // No footer: estimate the run length from the last chunk's time
        // range (an event at time t implies at least t + 1 retired steps).
        let total = last_t_end.map_or(0, |t| t.saturating_add(1));
        self.total_steps = Some(total);
        self.finished = true;
        (total, report)
    }

    /// Salvage twin of [`TraceReader::read_raw_chunks`]: reads every chunk
    /// that survives validation, skipping corrupt ones instead of aborting,
    /// and never fails — damage is tallied in the returned
    /// [`RecoveryReport`]. The step count is exact when
    /// [`RecoveryReport::footer_recovered`] is set and a lower-bound
    /// estimate otherwise.
    ///
    /// Note: on v1/v2 traces (no per-chunk CRC) payload corruption is
    /// invisible to this scan and only surfaces when the chunk is decoded —
    /// [`decode_batches_par_recover`](crate::decode_batches_par_recover)
    /// layers that on top.
    pub fn read_raw_chunks_recover(&mut self) -> (Vec<RawChunk>, u64, RecoveryReport) {
        let mut chunks = Vec::new();
        let (total_steps, report) = self.recover_scan(|head, payload, version| {
            chunks.push(RawChunk {
                events: head.events,
                t_first: head.t_first,
                version,
                payload: std::mem::take(payload),
            });
        });
        (chunks, total_steps, report)
    }

    /// Salvage twin of [`TraceReader::read_chunk_infos`]: chunk metadata
    /// for every chunk that survives validation, plus the recovery tally.
    /// Infallible; see [`TraceReader::read_raw_chunks_recover`].
    pub fn read_chunk_infos_recover(&mut self) -> (Vec<ChunkInfo>, u64, RecoveryReport) {
        let mut infos = Vec::new();
        let (total_steps, report) = self.recover_scan(|head, _payload, _version| {
            infos.push(ChunkInfo {
                events: head.events,
                t_first: head.t_first,
                t_last: head.t_first.saturating_add(head.t_span),
                payload_bytes: head.payload_len,
            });
        });
        (infos, total_steps, report)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Event, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_event().transpose()
    }
}

fn read_exact_or(r: &mut impl Read, buf: &mut [u8], what: &'static str) -> Result<(), TraceError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Truncated(what)
        } else {
            TraceError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use alchemist_lang::hir::FuncId;
    use alchemist_vm::{Pc, RecordingSink};

    fn sample_trace(chunk_capacity: usize) -> (Vec<u8>, RecordingSink) {
        let mut live = RecordingSink::default();
        let mut w = TraceWriter::new(Vec::new(), Some("int main() { return 0; }"))
            .unwrap()
            .with_chunk_capacity(chunk_capacity);
        let mut t = 0;
        for i in 0..25u32 {
            live.on_enter_function(t, FuncId(i % 3), 8 * i, Tid::MAIN);
            w.on_enter_function(t, FuncId(i % 3), 8 * i, Tid::MAIN);
            t += 2;
            live.on_read(t, i, Pc(i * 5), Tid::MAIN);
            w.on_read(t, i, Pc(i * 5), Tid::MAIN);
            t += 1;
            live.on_write(t, i + 100, Pc(i * 5 + 1), Tid::MAIN);
            w.on_write(t, i + 100, Pc(i * 5 + 1), Tid::MAIN);
            t += 40;
            live.on_exit_function(t, FuncId(i % 3), Tid::MAIN);
            w.on_exit_function(t, FuncId(i % 3), Tid::MAIN);
            t += 1;
        }
        let (bytes, _) = w.finish(t).unwrap();
        (bytes, live)
    }

    #[test]
    fn replay_reproduces_the_recording() {
        let (bytes, live) = sample_trace(7);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.source(), Some("int main() { return 0; }"));
        let mut replayed = RecordingSink::default();
        let summary = r.replay_into(&mut replayed).unwrap();
        assert_eq!(replayed, live);
        assert_eq!(summary.events, live.events.len() as u64);
        assert_eq!(r.total_steps(), Some(summary.total_steps));
    }

    #[test]
    fn writer_and_streaming_reader_metrics_are_symmetric() {
        use alchemist_obs::{Counter, Metrics};
        let m = Arc::new(Metrics::new());
        let mut w = TraceWriter::new(Vec::new(), None)
            .unwrap()
            .with_chunk_capacity(7)
            .with_metrics(Arc::clone(&m));
        let mut t = 0;
        for i in 0..25u32 {
            w.on_read(t, i, Pc(i), Tid::MAIN);
            t += 1;
        }
        let (bytes, stats) = w.finish(t).unwrap();
        assert_eq!(m.get(Counter::TraceChunksWritten), stats.chunks);
        assert_eq!(m.get(Counter::TraceEventsWritten), 25);
        assert_eq!(m.get(Counter::TraceBytesWritten), stats.bytes);

        let mut r = TraceReader::new(bytes.as_slice())
            .unwrap()
            .with_metrics(Arc::clone(&m));
        let mut sink = RecordingSink::default();
        r.replay_into(&mut sink).unwrap();
        assert_eq!(
            m.get(Counter::TraceChunksDecoded),
            m.get(Counter::TraceChunksWritten)
        );
        assert_eq!(m.get(Counter::TraceEventsDecoded), 25);
        assert!(m.get(Counter::TraceBytesDecoded) > 0);
    }

    #[test]
    fn iterator_yields_the_same_events() {
        let (bytes, live) = sample_trace(100_000);
        let r = TraceReader::new(bytes.as_slice()).unwrap();
        let events: Vec<Event> = r.map(|e| e.unwrap()).collect();
        assert_eq!(events, live.events);
    }

    #[test]
    fn batched_replay_reproduces_the_recording() {
        let (bytes, live) = sample_trace(7);
        // Batch sizes below, at and above the chunk size, plus a prime.
        for batch_size in [1usize, 3, 7, 11, 4096] {
            let mut r = TraceReader::new(bytes.as_slice()).unwrap();
            let mut replayed = RecordingSink::default();
            let summary = r
                .replay_batched_into(&mut replayed, batch_size)
                .unwrap_or_else(|e| panic!("batch_size={batch_size}: {e}"));
            assert_eq!(replayed, live, "batch_size={batch_size}");
            assert_eq!(summary.events, live.events.len() as u64);
            assert_eq!(r.total_steps(), Some(summary.total_steps));
        }
    }

    #[test]
    fn read_batch_crosses_chunk_boundaries() {
        let (bytes, live) = sample_trace(5); // chunks of 5 events
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let mut batch = alchemist_vm::EventBatch::new();
        let mut got = Vec::new();
        // 8 > 5: every full batch spans a chunk boundary.
        while r.read_batch(&mut batch, 8).unwrap() {
            assert!(batch.len() <= 8);
            got.extend(batch.iter());
        }
        assert_eq!(got, live.events);
        // Exhausted reader keeps answering false with an empty batch.
        assert!(!r.read_batch(&mut batch, 8).unwrap());
        assert!(batch.is_empty());
    }

    #[test]
    fn windowed_replay_delivers_exactly_the_window() {
        let (bytes, live) = sample_trace(5);
        let (lo, hi) = (50, 400);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let mut windowed = RecordingSink::default();
        let n = r.replay_window(lo, hi, &mut windowed).unwrap();
        let expect: Vec<Event> = live
            .events
            .iter()
            .copied()
            .filter(|e| (lo..=hi).contains(&e.time()))
            .collect();
        assert_eq!(windowed.events, expect);
        assert_eq!(n as usize, expect.len());
        assert!(!expect.is_empty(), "window test must cover events");
    }

    /// Replays `[lo, hi]` and checks it against filtering the live stream.
    fn check_window(bytes: &[u8], live: &RecordingSink, lo: u64, hi: u64) -> usize {
        let mut r = TraceReader::new(bytes).unwrap();
        let mut windowed = RecordingSink::default();
        let n = r.replay_window(lo, hi, &mut windowed).unwrap();
        let expect: Vec<Event> = live
            .events
            .iter()
            .copied()
            .filter(|e| (lo..=hi).contains(&e.time()))
            .collect();
        assert_eq!(windowed.events, expect, "window [{lo}, {hi}]");
        assert_eq!(n as usize, expect.len(), "window [{lo}, {hi}]");
        expect.len()
    }

    #[test]
    fn window_bounds_are_inclusive_at_exact_chunk_boundaries() {
        // Small chunks so boundary timestamps are mid-trace, not trivial.
        let (bytes, live) = sample_trace(5);
        let infos = TraceReader::new(bytes.as_slice())
            .unwrap()
            .read_chunk_infos()
            .unwrap();
        assert!(infos.len() >= 3, "need interior chunks to stress");
        for info in &infos {
            // Window starting exactly at a chunk's first event: that event
            // is delivered (lower bound inclusive), nothing earlier is.
            let n = check_window(&bytes, &live, info.t_first, u64::MAX);
            assert!(n > 0);
            // Window ending exactly at a chunk's last event: inclusive.
            let n = check_window(&bytes, &live, 0, info.t_last);
            assert!(n > 0);
            // Degenerate single-instant windows on both boundaries.
            check_window(&bytes, &live, info.t_first, info.t_first);
            check_window(&bytes, &live, info.t_last, info.t_last);
            // One past the chunk's end excludes its last event but keeps
            // everything before it.
            if info.t_last > 0 {
                check_window(&bytes, &live, 0, info.t_last - 1);
            }
        }
    }

    #[test]
    fn empty_windows_deliver_nothing() {
        let (bytes, live) = sample_trace(5);
        let t_end = live.events.last().unwrap().time();
        // Inverted bounds.
        assert_eq!(check_window(&bytes, &live, 10, 9), 0);
        // Entirely after the trace.
        assert_eq!(check_window(&bytes, &live, t_end + 1, t_end + 100), 0);
        // Between two events (timestamps 0,2,3 then a +40 gap per round).
        assert_eq!(check_window(&bytes, &live, 5, 40), 0);
    }

    #[test]
    fn whole_trace_window_equals_full_replay() {
        let (bytes, live) = sample_trace(5);
        let n = check_window(&bytes, &live, 0, u64::MAX);
        assert_eq!(n, live.events.len());
        let t_first = live.events.first().unwrap().time();
        let t_end = live.events.last().unwrap().time();
        // The tight [first, last] window is also the whole trace.
        assert_eq!(
            check_window(&bytes, &live, t_first, t_end),
            live.events.len()
        );
    }

    #[test]
    fn chunk_infos_partition_the_event_stream() {
        let (bytes, live) = sample_trace(8);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let infos = r.read_chunk_infos().unwrap();
        let total: u64 = infos.iter().map(|c| c.events).sum();
        assert_eq!(total, live.events.len() as u64);
        for w in infos.windows(2) {
            assert!(w[0].t_last <= w[1].t_first, "chunks are time-ordered");
        }
    }

    #[test]
    fn empty_trace_replays_zero_events() {
        let (bytes, _) = TraceWriter::new(Vec::new(), None)
            .unwrap()
            .finish(9)
            .unwrap();
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let summary = r.replay_into(&mut alchemist_vm::NullSink).unwrap();
        assert_eq!(summary.events, 0);
        assert_eq!(summary.total_steps, 9);
    }

    /// A v2 trace whose events rotate across three threads, with chunk
    /// boundaries falling mid-thread-run.
    fn sample_v2_trace(chunk_capacity: usize) -> (Vec<u8>, RecordingSink) {
        let mut live = RecordingSink::default();
        let mut w = TraceWriter::new_v2(Vec::new(), Some("spawn demo"))
            .unwrap()
            .with_chunk_capacity(chunk_capacity);
        let mut t = 0;
        for i in 0..25u32 {
            let tid = Tid(i % 3);
            live.on_enter_function(t, FuncId(i % 3), 8 * i, tid);
            w.on_enter_function(t, FuncId(i % 3), 8 * i, tid);
            t += 2;
            live.on_read(t, i, Pc(i * 5), tid);
            w.on_read(t, i, Pc(i * 5), tid);
            t += 1;
            live.on_write(t, i + 100, Pc(i * 5 + 1), tid);
            w.on_write(t, i + 100, Pc(i * 5 + 1), tid);
            t += 40;
            live.on_exit_function(t, FuncId(i % 3), tid);
            w.on_exit_function(t, FuncId(i % 3), tid);
            t += 1;
        }
        let (bytes, _) = w.finish(t).unwrap();
        (bytes, live)
    }

    #[test]
    fn v2_replay_preserves_thread_ids() {
        for chunk_capacity in [1usize, 7, 100_000] {
            let (bytes, live) = sample_v2_trace(chunk_capacity);
            let mut r = TraceReader::new(bytes.as_slice()).unwrap();
            assert_eq!(r.version(), format::VERSION_V2);
            let mut replayed = RecordingSink::default();
            let summary = r.replay_into(&mut replayed).unwrap();
            assert_eq!(replayed, live, "chunk_capacity={chunk_capacity}");
            assert_eq!(summary.events, live.events.len() as u64);
        }
    }

    #[test]
    fn v2_windowed_replay_preserves_thread_ids() {
        let (bytes, live) = sample_v2_trace(5);
        let (lo, hi) = (50, 400);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let mut windowed = RecordingSink::default();
        r.replay_window(lo, hi, &mut windowed).unwrap();
        let expect: Vec<Event> = live
            .events
            .iter()
            .copied()
            .filter(|e| (lo..=hi).contains(&e.time()))
            .collect();
        assert_eq!(windowed.events, expect);
        assert!(expect.iter().any(|e| e.tid() != Tid::MAIN));
    }

    #[test]
    fn v1_traces_decode_with_implicit_main_tid() {
        let (bytes, live) = sample_trace(7);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.version(), format::VERSION);
        let mut replayed = RecordingSink::default();
        r.replay_into(&mut replayed).unwrap();
        assert!(replayed.events.iter().all(|e| e.tid() == Tid::MAIN));
        assert_eq!(replayed, live);
    }

    #[test]
    fn future_version_error_reports_the_supported_range() {
        // Hand-build a v4 header: magic + version 4 + empty flags.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&format::MAGIC);
        bytes.extend_from_slice(&4u16.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        let err = TraceReader::new(bytes.as_slice()).unwrap_err();
        match err {
            TraceError::UnsupportedVersion {
                found,
                min_supported,
                max_supported,
                chunk_index,
            } => {
                assert_eq!(found, 4);
                assert_eq!(min_supported, format::MIN_VERSION);
                assert_eq!(max_supported, format::MAX_VERSION);
                assert_eq!(chunk_index, 0, "rejected at the header");
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn raw_chunks_carry_the_format_version() {
        let (bytes, _) = sample_v2_trace(7);
        let (chunks, _) = TraceReader::new(bytes.as_slice())
            .unwrap()
            .read_raw_chunks()
            .unwrap();
        assert!(!chunks.is_empty());
        assert!(chunks.iter().all(|c| c.version == format::VERSION_V2));
    }

    /// A v3 trace mirroring `sample_v2_trace` (CRC per chunk).
    fn sample_v3_trace(chunk_capacity: usize) -> (Vec<u8>, RecordingSink) {
        let mut live = RecordingSink::default();
        let mut w = TraceWriter::new_v3(Vec::new(), Some("spawn demo"))
            .unwrap()
            .with_chunk_capacity(chunk_capacity);
        let mut t = 0;
        for i in 0..25u32 {
            let tid = Tid(i % 3);
            live.on_enter_function(t, FuncId(i % 3), 8 * i, tid);
            w.on_enter_function(t, FuncId(i % 3), 8 * i, tid);
            t += 2;
            live.on_read(t, i, Pc(i * 5), tid);
            w.on_read(t, i, Pc(i * 5), tid);
            t += 40;
            live.on_exit_function(t, FuncId(i % 3), tid);
            w.on_exit_function(t, FuncId(i % 3), tid);
            t += 1;
        }
        let (bytes, _) = w.finish(t).unwrap();
        (bytes, live)
    }

    #[test]
    fn v3_roundtrips_with_thread_ids_and_verified_crcs() {
        for chunk_capacity in [1usize, 7, 100_000] {
            let (bytes, live) = sample_v3_trace(chunk_capacity);
            let mut r = TraceReader::new(bytes.as_slice()).unwrap();
            assert_eq!(r.version(), format::VERSION_V3);
            let mut replayed = RecordingSink::default();
            let summary = r.replay_into(&mut replayed).unwrap();
            assert_eq!(replayed, live, "chunk_capacity={chunk_capacity}");
            assert_eq!(summary.events, live.events.len() as u64);
        }
    }

    #[test]
    fn v3_detects_payload_corruption_positively() {
        let (bytes, _) = sample_v3_trace(7);
        // Flip one byte in the middle of the file (past the header).
        let mut corrupt = bytes.clone();
        let pos = bytes.len() / 2;
        corrupt[pos] ^= 0x01;
        let mut r = TraceReader::new(corrupt.as_slice()).unwrap();
        let err = r.replay_into(&mut alchemist_vm::NullSink).unwrap_err();
        // The flip lands in a payload (CRC mismatch) or a chunk head
        // (structural error); either way it is a typed error, and a CRC
        // mismatch carries both sums.
        if let TraceError::ChecksumMismatch {
            expected, actual, ..
        } = err
        {
            assert_ne!(expected, actual);
        }
    }

    #[test]
    fn recover_scan_of_a_clean_trace_is_clean() {
        let (bytes, live) = sample_v3_trace(5);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let (chunks, total_steps, report) = r.read_raw_chunks_recover();
        assert!(report.is_clean(), "{report:?}");
        assert!(report.footer_recovered);
        assert_eq!(report.chunks_skipped, 0);
        assert_eq!(report.events_salvaged, live.events.len() as u64);
        assert_eq!(report.first_bad_offset, None);
        assert!(total_steps > 0);
        assert_eq!(
            chunks.iter().map(|c| c.events).sum::<u64>(),
            live.events.len() as u64
        );
    }

    #[test]
    fn recover_skips_a_crc_corrupt_chunk_and_resyncs() {
        let (bytes, live) = sample_v3_trace(5);
        let (clean_chunks, _, _) = TraceReader::new(bytes.as_slice())
            .unwrap()
            .read_raw_chunks_recover();
        assert!(clean_chunks.len() >= 3, "need interior chunks");
        // Corrupt the middle chunk's payload: find it by scanning for its
        // payload bytes (unique enough for this fixture) — instead, flip a
        // byte inside every chunk payload one at a time via offsets from a
        // fresh scan of the file layout.
        let infos = TraceReader::new(bytes.as_slice())
            .unwrap()
            .read_chunk_infos()
            .unwrap();
        assert_eq!(infos.len(), clean_chunks.len());
        // Walk the file re-deriving each chunk's payload offset: header is
        // everything before the first chunk; simpler to corrupt by searching
        // for each payload slice.
        let target = 1; // second chunk
        let needle = clean_chunks[target].payload.as_slice();
        let pos = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("payload bytes present");
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0xff;
        let mut r = TraceReader::new(corrupt.as_slice()).unwrap();
        let (chunks, total_steps, report) = r.read_raw_chunks_recover();
        assert_eq!(report.chunks_skipped, 1, "{report:?}");
        assert_eq!(report.crc_mismatches, 1);
        assert!(!report.truncated_tail, "CRC skip must resync");
        assert!(report.footer_recovered);
        assert!(report.first_bad_offset.is_some());
        assert_eq!(report.events_lost, clean_chunks[target].events);
        assert_eq!(chunks.len(), clean_chunks.len() - 1);
        // The surviving chunks are exactly the clean ones minus the target.
        let survived: u64 = chunks.iter().map(|c| c.events).sum();
        assert_eq!(
            survived,
            live.events.len() as u64 - clean_chunks[target].events
        );
        assert!(total_steps > 0);
    }

    #[test]
    fn recover_salvages_the_prefix_of_a_truncated_trace() {
        let (bytes, _) = sample_v3_trace(5);
        let (clean_chunks, clean_steps, _) = TraceReader::new(bytes.as_slice())
            .unwrap()
            .read_raw_chunks_recover();
        // Cut the file mid-way: salvage must return complete chunks only.
        for cut in [bytes.len() / 3, bytes.len() / 2, bytes.len() - 3] {
            let mut r = TraceReader::new(&bytes[..cut]).unwrap();
            let (chunks, total_steps, report) = r.read_raw_chunks_recover();
            assert!(!report.footer_recovered, "cut={cut}");
            assert!(chunks.len() <= clean_chunks.len());
            assert_eq!(
                &chunks[..],
                &clean_chunks[..chunks.len()],
                "salvaged chunks must be a clean prefix (cut={cut})"
            );
            assert!(total_steps <= clean_steps);
        }
    }

    #[test]
    fn recover_estimates_steps_when_the_footer_is_missing() {
        let (bytes, live) = sample_v3_trace(100_000); // single chunk
                                                      // Chop off the footer exactly: scan for the last chunk boundary by
                                                      // replaying sizes. Easiest: drop the trailing footer bytes —
                                                      // footer = head varints (>=4 bytes) + crc(4) + payload(>=1).
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let (chunks, _, report) = r.read_raw_chunks_recover();
        assert!(report.footer_recovered);
        assert_eq!(chunks.len(), 1);
        // Now truncate just past the single data chunk's payload end.
        let needle = chunks[0].payload.as_slice();
        let pos = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .unwrap();
        let cut = pos + needle.len();
        let mut r = TraceReader::new(&bytes[..cut]).unwrap();
        let (chunks2, total_steps, report2) = r.read_raw_chunks_recover();
        assert_eq!(chunks2, chunks);
        assert!(!report2.footer_recovered);
        assert!(!report2.truncated_tail, "clean cut at a chunk boundary");
        let t_last = live.events.last().unwrap().time();
        assert!(total_steps >= t_last, "{total_steps} vs t_last {t_last}");
    }

    #[test]
    fn data_after_footer_is_rejected() {
        let (mut bytes, _) = sample_trace(7);
        bytes.push(0x00);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(
            r.replay_into(&mut alchemist_vm::NullSink),
            Err(TraceError::Malformed("data after footer"))
        ));
    }
}
