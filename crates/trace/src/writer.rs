//! Recording: a [`TraceWriter`] is a [`TraceSink`] that streams events into
//! the chunked binary format.

use crate::error::TraceError;
use crate::format::{self, CodecState};
use crate::varint;
use alchemist_lang::hir::FuncId;
use alchemist_vm::{BlockId, Event, EventBatch, Pc, Time, TraceSink};
use std::io::Write;

/// How many events a chunk holds before it is flushed.
pub const DEFAULT_CHUNK_EVENTS: usize = 4096;

// One default batch fills exactly one default chunk — replay's default
// dispatch granularity and the docs rely on the coupling, so pin it.
const _: () = assert!(DEFAULT_CHUNK_EVENTS == alchemist_vm::DEFAULT_BATCH_EVENTS);

/// Sizes of a finished recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Events recorded.
    pub events: u64,
    /// Chunks written (excluding the footer).
    pub chunks: u64,
    /// Total bytes written, header and footer included.
    pub bytes: u64,
}

impl TraceStats {
    /// Average encoded size of one event, header/footer overhead included.
    pub fn bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.bytes as f64 / self.events as f64
        }
    }
}

/// Streams [`TraceSink`] events into a writer in `.alct` format.
///
/// Lend it to the interpreter with `&mut` (sinks are implemented for
/// mutable references), then call [`TraceWriter::finish`] with the run's
/// final step count to flush the last chunk and the footer.
///
/// `TraceSink` methods cannot return errors, so I/O failures during
/// recording are deferred: the writer goes quiescent on the first failure
/// and [`TraceWriter::finish`] reports it.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    /// Encoded payload of the chunk being built.
    buf: Vec<u8>,
    state: CodecState,
    chunk_events: u64,
    chunk_t_first: Time,
    chunk_t_last: Time,
    chunk_capacity: usize,
    events: u64,
    chunks: u64,
    bytes: u64,
    deferred: Option<TraceError>,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header immediately.
    ///
    /// Pass the program's mini-C source as `source` to make the trace
    /// self-contained (replay can recompile the module from the file
    /// alone).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if writing the header fails.
    pub fn new(mut out: W, source: Option<&str>) -> Result<Self, TraceError> {
        let mut header = Vec::with_capacity(16 + source.map_or(0, str::len));
        header.extend_from_slice(&format::MAGIC);
        header.extend_from_slice(&format::VERSION.to_le_bytes());
        let flags = if source.is_some() {
            format::FLAG_SOURCE
        } else {
            0
        };
        header.extend_from_slice(&flags.to_le_bytes());
        if let Some(src) = source {
            varint::write_u64(&mut header, src.len() as u64);
            header.extend_from_slice(src.as_bytes());
        }
        out.write_all(&header)?;
        Ok(TraceWriter {
            out,
            buf: Vec::with_capacity(4 * DEFAULT_CHUNK_EVENTS),
            state: CodecState::new(0),
            chunk_events: 0,
            chunk_t_first: 0,
            chunk_t_last: 0,
            chunk_capacity: DEFAULT_CHUNK_EVENTS,
            events: 0,
            chunks: 0,
            bytes: header.len() as u64,
            deferred: None,
        })
    }

    /// Overrides the events-per-chunk flush threshold (minimum 1).
    pub fn with_chunk_capacity(mut self, events: usize) -> Self {
        self.chunk_capacity = events.max(1);
        self
    }

    /// Events recorded so far.
    pub fn events_recorded(&self) -> u64 {
        self.events
    }

    /// Bytes emitted so far (flushed chunks only).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    fn record(&mut self, ev: Event) {
        if self.deferred.is_some() {
            return;
        }
        let t = ev.time();
        if self.chunk_events == 0 {
            self.state = CodecState::new(t);
            self.chunk_t_first = t;
        }
        self.chunk_t_last = t;
        format::encode_event(&mut self.state, &ev, &mut self.buf);
        self.chunk_events += 1;
        self.events += 1;
        if self.chunk_events as usize >= self.chunk_capacity {
            if let Err(e) = self.flush_chunk() {
                self.deferred = Some(e);
            }
        }
    }

    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        if self.chunk_events == 0 {
            return Ok(());
        }
        let mut head = Vec::with_capacity(24);
        varint::write_u64(&mut head, self.buf.len() as u64);
        varint::write_u64(&mut head, self.chunk_events);
        varint::write_u64(&mut head, self.chunk_t_first);
        varint::write_u64(&mut head, self.chunk_t_last - self.chunk_t_first);
        self.out.write_all(&head)?;
        self.out.write_all(&self.buf)?;
        self.bytes += (head.len() + self.buf.len()) as u64;
        self.chunks += 1;
        self.buf.clear();
        self.chunk_events = 0;
        Ok(())
    }

    /// Flushes the final chunk, writes the footer carrying `total_steps`,
    /// and returns the inner writer plus size statistics.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error, including any deferred from recording.
    pub fn finish(mut self, total_steps: u64) -> Result<(W, TraceStats), TraceError> {
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        self.flush_chunk()?;
        // Footer: an event_count == 0 chunk whose payload is total_steps.
        let mut payload = Vec::with_capacity(10);
        varint::write_u64(&mut payload, total_steps);
        let mut head = Vec::with_capacity(24);
        varint::write_u64(&mut head, payload.len() as u64);
        varint::write_u64(&mut head, 0);
        varint::write_u64(&mut head, self.chunk_t_last);
        varint::write_u64(&mut head, 0);
        self.out.write_all(&head)?;
        self.out.write_all(&payload)?;
        self.bytes += (head.len() + payload.len()) as u64;
        self.out.flush()?;
        let stats = TraceStats {
            events: self.events,
            chunks: self.chunks,
            bytes: self.bytes,
        };
        Ok((self.out, stats))
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn on_enter_function(&mut self, t: Time, func: FuncId, fp: u32) {
        self.record(Event::Enter { t, func, fp });
    }
    fn on_exit_function(&mut self, t: Time, func: FuncId) {
        self.record(Event::Exit { t, func });
    }
    fn on_block_entry(&mut self, t: Time, block: BlockId) {
        self.record(Event::Block { t, block });
    }
    fn on_predicate(&mut self, t: Time, pc: Pc, block: BlockId, taken: bool) {
        self.record(Event::Predicate {
            t,
            pc,
            block,
            taken,
        });
    }
    fn on_read(&mut self, t: Time, addr: u32, pc: Pc) {
        self.record(Event::Read { t, addr, pc });
    }
    fn on_write(&mut self, t: Time, addr: u32, pc: Pc) {
        self.record(Event::Write { t, addr, pc });
    }
    fn on_batch(&mut self, batch: &EventBatch) {
        // One virtual call encodes the whole batch. The encode loop is the
        // same as the per-event path (including the every-`chunk_capacity`
        // flushes), so the byte stream — chunk boundaries and all — is
        // identical to recording event by event.
        if self.deferred.is_some() {
            return;
        }
        for ev in batch.iter() {
            self.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layout_is_stable() {
        let (bytes, stats) = TraceWriter::new(Vec::new(), None)
            .unwrap()
            .finish(0)
            .unwrap();
        assert_eq!(&bytes[..4], b"ALCT");
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), format::VERSION);
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 0, "no flags");
        assert_eq!(stats.events, 0);
        assert_eq!(stats.bytes, bytes.len() as u64);
    }

    #[test]
    fn source_flag_embeds_the_program() {
        let src = "int main() { return 0; }";
        let mut w = TraceWriter::new(Vec::new(), Some(src)).unwrap();
        w.on_block_entry(1, BlockId(0));
        let (bytes, stats) = w.finish(5).unwrap();
        assert_eq!(
            u16::from_le_bytes([bytes[6], bytes[7]]) & format::FLAG_SOURCE,
            format::FLAG_SOURCE
        );
        let hay = String::from_utf8_lossy(&bytes);
        assert!(hay.contains(src), "source embedded verbatim");
        assert_eq!(stats.events, 1);
        assert_eq!(stats.chunks, 1);
    }

    #[test]
    fn chunk_capacity_splits_the_stream() {
        let mut w = TraceWriter::new(Vec::new(), None)
            .unwrap()
            .with_chunk_capacity(4);
        for i in 0..10 {
            w.on_read(i, i as u32, Pc(0));
        }
        let (_, stats) = w.finish(10).unwrap();
        assert_eq!(stats.events, 10);
        assert_eq!(stats.chunks, 3, "4 + 4 + 2 events");
    }

    #[test]
    fn batched_recording_is_byte_identical() {
        let events: Vec<Event> = (0..50u32)
            .map(|i| {
                if i % 3 == 0 {
                    Event::Read {
                        t: u64::from(i),
                        addr: i,
                        pc: Pc(i / 2),
                    }
                } else {
                    Event::Write {
                        t: u64::from(i),
                        addr: i % 7,
                        pc: Pc(i),
                    }
                }
            })
            .collect();
        let mut per_event = TraceWriter::new(Vec::new(), None)
            .unwrap()
            .with_chunk_capacity(8);
        for e in &events {
            e.dispatch(&mut per_event);
        }
        let (expect, _) = per_event.finish(50).unwrap();
        for batch_size in [1usize, 4, 8, 13, 64] {
            let mut w = TraceWriter::new(Vec::new(), None)
                .unwrap()
                .with_chunk_capacity(8);
            for sl in events.chunks(batch_size) {
                w.on_batch(&EventBatch::from_events(sl));
            }
            let (bytes, stats) = w.finish(50).unwrap();
            assert_eq!(bytes, expect, "batch_size={batch_size}");
            assert_eq!(stats.events, 50);
        }
    }

    #[test]
    fn deferred_io_errors_surface_at_finish() {
        /// A writer that accepts the header, then fails.
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::Error::other("disk full"));
                }
                self.0 = self.0.saturating_sub(1);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = TraceWriter::new(FailAfter(1), None)
            .unwrap()
            .with_chunk_capacity(1);
        w.on_read(0, 0, Pc(0)); // flush fails here, silently deferred
        w.on_read(1, 1, Pc(1)); // writer is quiescent
        assert!(matches!(w.finish(2), Err(TraceError::Io(_))));
    }
}
