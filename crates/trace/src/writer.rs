//! Recording: a [`TraceWriter`] is a [`TraceSink`] that streams events into
//! the chunked binary format.

use crate::error::TraceError;
use crate::format::{self, CodecState};
use crate::varint;
use alchemist_lang::hir::FuncId;
use alchemist_obs::{Counter, Hist, Metrics, Stage};
use alchemist_vm::{BlockId, Event, EventBatch, Pc, Tid, Time, TraceSink};
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// How many events a chunk holds before it is flushed.
pub const DEFAULT_CHUNK_EVENTS: usize = 4096;

/// Default checkpoint cadence: the underlying writer is flushed after every
/// this many chunks, bounding how much a crash mid-record can lose to
/// OS/BufWriter buffering (the salvage reader recovers everything up to the
/// last complete chunk that reached the file).
pub const DEFAULT_CHECKPOINT_CHUNKS: u64 = 16;

// One default batch fills exactly one default chunk — replay's default
// dispatch granularity and the docs rely on the coupling, so pin it.
const _: () = assert!(DEFAULT_CHUNK_EVENTS == alchemist_vm::DEFAULT_BATCH_EVENTS);

/// Sizes of a finished recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Events recorded.
    pub events: u64,
    /// Chunks written (excluding the footer).
    pub chunks: u64,
    /// Total bytes written, header and footer included.
    pub bytes: u64,
}

impl TraceStats {
    /// Average encoded size of one event, header/footer overhead included.
    pub fn bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.bytes as f64 / self.events as f64
        }
    }
}

/// Streams [`TraceSink`] events into a writer in `.alct` format.
///
/// Lend it to the interpreter with `&mut` (sinks are implemented for
/// mutable references), then call [`TraceWriter::finish`] with the run's
/// final step count to flush the last chunk and the footer.
///
/// `TraceSink` methods cannot return errors, so I/O failures during
/// recording are deferred: the writer goes quiescent on the first failure
/// and [`TraceWriter::finish`] reports it.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    /// Format version being written (1, 2 or 3).
    version: u16,
    /// Encoded payload of the chunk being built.
    buf: Vec<u8>,
    /// Thread id of each event in the chunk being built (v2 only).
    chunk_tids: Vec<u32>,
    state: CodecState,
    chunk_events: u64,
    chunk_t_first: Time,
    chunk_t_last: Time,
    chunk_capacity: usize,
    /// Flush the underlying writer every this many chunks (0 = never).
    checkpoint_interval: u64,
    events: u64,
    chunks: u64,
    bytes: u64,
    deferred: Option<TraceError>,
    metrics: Option<Arc<Metrics>>,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header immediately.
    ///
    /// Pass the program's mini-C source as `source` to make the trace
    /// self-contained (replay can recompile the module from the file
    /// alone).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if writing the header fails.
    pub fn new(out: W, source: Option<&str>) -> Result<Self, TraceError> {
        Self::new_with_version(out, source, format::VERSION)
    }

    /// Creates a v2 writer: each chunk carries a per-event thread-id
    /// column, so events from `spawn`ed threads keep their [`Tid`].
    ///
    /// Single-threaded recordings should use [`TraceWriter::new`] — v1
    /// output is byte-for-byte what older tooling expects.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if writing the header fails.
    pub fn new_v2(out: W, source: Option<&str>) -> Result<Self, TraceError> {
        Self::new_with_version(out, source, format::VERSION_V2)
    }

    /// Creates a v3 writer: the v2 layout plus a per-chunk CRC-32, so a
    /// reader can positively detect corruption and salvage around it
    /// (`replay --recover`). Costs 4 bytes per chunk.
    ///
    /// v1/v2 output from the other constructors stays byte-for-byte
    /// unchanged — the CRC word exists only in v3 files.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if writing the header fails.
    pub fn new_v3(out: W, source: Option<&str>) -> Result<Self, TraceError> {
        Self::new_with_version(out, source, format::VERSION_V3)
    }

    fn new_with_version(
        mut out: W,
        source: Option<&str>,
        version: u16,
    ) -> Result<Self, TraceError> {
        let mut header = Vec::with_capacity(16 + source.map_or(0, str::len));
        header.extend_from_slice(&format::MAGIC);
        header.extend_from_slice(&version.to_le_bytes());
        let flags = if source.is_some() {
            format::FLAG_SOURCE
        } else {
            0
        };
        header.extend_from_slice(&flags.to_le_bytes());
        if let Some(src) = source {
            varint::write_u64(&mut header, src.len() as u64);
            header.extend_from_slice(src.as_bytes());
        }
        out.write_all(&header)?;
        Ok(TraceWriter {
            out,
            version,
            buf: Vec::with_capacity(4 * DEFAULT_CHUNK_EVENTS),
            chunk_tids: Vec::new(),
            state: CodecState::new(0),
            chunk_events: 0,
            chunk_t_first: 0,
            chunk_t_last: 0,
            chunk_capacity: DEFAULT_CHUNK_EVENTS,
            checkpoint_interval: DEFAULT_CHECKPOINT_CHUNKS,
            events: 0,
            chunks: 0,
            bytes: header.len() as u64,
            deferred: None,
            metrics: None,
        })
    }

    /// Attaches a metrics sink: every chunk flush records its latency
    /// (`encode` stage + [`Hist::EncodeChunkNs`]) and [`finish`] folds in
    /// total chunks/bytes/events written. Costs one clock read per chunk,
    /// nothing per event.
    ///
    /// [`finish`]: TraceWriter::finish
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Format version this writer emits (1, 2 or 3).
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Overrides the events-per-chunk flush threshold (minimum 1).
    pub fn with_chunk_capacity(mut self, events: usize) -> Self {
        self.chunk_capacity = events.max(1);
        self
    }

    /// Overrides the checkpoint cadence: the underlying writer is flushed
    /// after every `chunks` complete chunks (0 disables checkpointing).
    /// Defaults to [`DEFAULT_CHECKPOINT_CHUNKS`].
    pub fn with_checkpoint_interval(mut self, chunks: u64) -> Self {
        self.checkpoint_interval = chunks;
        self
    }

    /// Events recorded so far.
    pub fn events_recorded(&self) -> u64 {
        self.events
    }

    /// Timestamp of the most recent event, 0 before the first one.
    ///
    /// An interrupted recording has no final step count to put in the
    /// footer; `last_event_time() + 1` is the same lower-bound estimate the
    /// salvage reader derives for a footer-less trace, so the CLI's SIGINT
    /// path finalizes with it.
    pub fn last_event_time(&self) -> Time {
        self.chunk_t_last
    }

    /// Bytes emitted so far (flushed chunks only).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    fn record(&mut self, ev: Event) {
        if self.deferred.is_some() {
            return;
        }
        match self.version {
            v if v >= format::VERSION_V2 => self.chunk_tids.push(ev.tid().0),
            _ if ev.tid() != Tid::MAIN => {
                // v1 has no thread-id column; silently dropping tids would
                // corrupt the recording, so fail the run at finish().
                self.deferred = Some(TraceError::Malformed(
                    "non-main thread event recorded under trace format v1",
                ));
                return;
            }
            _ => {}
        }
        let t = ev.time();
        if self.chunk_events == 0 {
            self.state = CodecState::new(t);
            self.chunk_t_first = t;
        }
        self.chunk_t_last = t;
        format::encode_event(&mut self.state, &ev, &mut self.buf);
        self.chunk_events += 1;
        self.events += 1;
        if self.chunk_events as usize >= self.chunk_capacity {
            if let Err(e) = self.flush_chunk() {
                self.deferred = Some(e);
            }
        }
    }

    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        if self.chunk_events == 0 {
            return Ok(());
        }
        let t0 = self.metrics.as_ref().map(|_| Instant::now());
        // v2 payload = thread-id column, then the v1 event stream. Both are
        // self-delimiting varint sequences, so no inner length prefix.
        let mut tid_col = Vec::new();
        if self.version >= format::VERSION_V2 {
            format::encode_tid_column(&self.chunk_tids, &mut tid_col);
        }
        let mut head = Vec::with_capacity(24);
        varint::write_u64(&mut head, (tid_col.len() + self.buf.len()) as u64);
        varint::write_u64(&mut head, self.chunk_events);
        varint::write_u64(&mut head, self.chunk_t_first);
        varint::write_u64(&mut head, self.chunk_t_last - self.chunk_t_first);
        if self.version >= format::VERSION_V3 {
            // v3: CRC-32 of the payload (tid column + event stream), not
            // counted in payload_len, between the head varints and payload.
            let crc = format::crc32_concat(&tid_col, &self.buf);
            head.extend_from_slice(&crc.to_le_bytes());
        }
        self.out.write_all(&head)?;
        self.out.write_all(&tid_col)?;
        self.out.write_all(&self.buf)?;
        self.bytes += (head.len() + tid_col.len() + self.buf.len()) as u64;
        self.chunks += 1;
        self.buf.clear();
        self.chunk_tids.clear();
        self.chunk_events = 0;
        if self.checkpoint_interval != 0 && self.chunks.is_multiple_of(self.checkpoint_interval) {
            self.out.flush()?;
        }
        if let (Some(m), Some(t0)) = (&self.metrics, t0) {
            let ns = t0.elapsed().as_nanos() as u64;
            m.incr(Counter::TraceChunksWritten);
            m.observe_ns(Hist::EncodeChunkNs, ns);
            m.record_span(Stage::Encode, ns);
        }
        Ok(())
    }

    /// Flushes the final chunk, writes the footer carrying `total_steps`,
    /// and returns the inner writer plus size statistics.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error, including any deferred from recording.
    pub fn finish(mut self, total_steps: u64) -> Result<(W, TraceStats), TraceError> {
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        self.flush_chunk()?;
        // Footer: an event_count == 0 chunk whose payload is total_steps.
        let mut payload = Vec::with_capacity(10);
        varint::write_u64(&mut payload, total_steps);
        let mut head = Vec::with_capacity(24);
        varint::write_u64(&mut head, payload.len() as u64);
        varint::write_u64(&mut head, 0);
        varint::write_u64(&mut head, self.chunk_t_last);
        varint::write_u64(&mut head, 0);
        if self.version >= format::VERSION_V3 {
            head.extend_from_slice(&format::crc32(&payload).to_le_bytes());
        }
        self.out.write_all(&head)?;
        self.out.write_all(&payload)?;
        self.bytes += (head.len() + payload.len()) as u64;
        self.out.flush()?;
        let stats = TraceStats {
            events: self.events,
            chunks: self.chunks,
            bytes: self.bytes,
        };
        if let Some(m) = &self.metrics {
            m.add(Counter::TraceEventsWritten, stats.events);
            m.add(Counter::TraceBytesWritten, stats.bytes);
        }
        Ok((self.out, stats))
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn on_enter_function(&mut self, t: Time, func: FuncId, fp: u32, tid: Tid) {
        self.record(Event::Enter { t, func, fp, tid });
    }
    fn on_exit_function(&mut self, t: Time, func: FuncId, tid: Tid) {
        self.record(Event::Exit { t, func, tid });
    }
    fn on_block_entry(&mut self, t: Time, block: BlockId, tid: Tid) {
        self.record(Event::Block { t, block, tid });
    }
    fn on_predicate(&mut self, t: Time, pc: Pc, block: BlockId, taken: bool, tid: Tid) {
        self.record(Event::Predicate {
            t,
            pc,
            block,
            taken,
            tid,
        });
    }
    fn on_read(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        self.record(Event::Read { t, addr, pc, tid });
    }
    fn on_write(&mut self, t: Time, addr: u32, pc: Pc, tid: Tid) {
        self.record(Event::Write { t, addr, pc, tid });
    }
    fn on_batch(&mut self, batch: &EventBatch) {
        // One virtual call encodes the whole batch. The encode loop is the
        // same as the per-event path (including the every-`chunk_capacity`
        // flushes), so the byte stream — chunk boundaries and all — is
        // identical to recording event by event.
        if self.deferred.is_some() {
            return;
        }
        for ev in batch.iter() {
            self.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layout_is_stable() {
        let (bytes, stats) = TraceWriter::new(Vec::new(), None)
            .unwrap()
            .finish(0)
            .unwrap();
        assert_eq!(&bytes[..4], b"ALCT");
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), format::VERSION);
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 0, "no flags");
        assert_eq!(stats.events, 0);
        assert_eq!(stats.bytes, bytes.len() as u64);
    }

    #[test]
    fn source_flag_embeds_the_program() {
        let src = "int main() { return 0; }";
        let mut w = TraceWriter::new(Vec::new(), Some(src)).unwrap();
        w.on_block_entry(1, BlockId(0), Tid::MAIN);
        let (bytes, stats) = w.finish(5).unwrap();
        assert_eq!(
            u16::from_le_bytes([bytes[6], bytes[7]]) & format::FLAG_SOURCE,
            format::FLAG_SOURCE
        );
        let hay = String::from_utf8_lossy(&bytes);
        assert!(hay.contains(src), "source embedded verbatim");
        assert_eq!(stats.events, 1);
        assert_eq!(stats.chunks, 1);
    }

    #[test]
    fn chunk_capacity_splits_the_stream() {
        let mut w = TraceWriter::new(Vec::new(), None)
            .unwrap()
            .with_chunk_capacity(4);
        for i in 0..10 {
            w.on_read(i, i as u32, Pc(0), Tid::MAIN);
        }
        let (_, stats) = w.finish(10).unwrap();
        assert_eq!(stats.events, 10);
        assert_eq!(stats.chunks, 3, "4 + 4 + 2 events");
    }

    #[test]
    fn batched_recording_is_byte_identical() {
        let events: Vec<Event> = (0..50u32)
            .map(|i| {
                if i % 3 == 0 {
                    Event::Read {
                        t: u64::from(i),
                        addr: i,
                        pc: Pc(i / 2),
                        tid: Tid::MAIN,
                    }
                } else {
                    Event::Write {
                        t: u64::from(i),
                        addr: i % 7,
                        pc: Pc(i),
                        tid: Tid::MAIN,
                    }
                }
            })
            .collect();
        let mut per_event = TraceWriter::new(Vec::new(), None)
            .unwrap()
            .with_chunk_capacity(8);
        for e in &events {
            e.dispatch(&mut per_event);
        }
        let (expect, _) = per_event.finish(50).unwrap();
        for batch_size in [1usize, 4, 8, 13, 64] {
            let mut w = TraceWriter::new(Vec::new(), None)
                .unwrap()
                .with_chunk_capacity(8);
            for sl in events.chunks(batch_size) {
                w.on_batch(&EventBatch::from_events(sl));
            }
            let (bytes, stats) = w.finish(50).unwrap();
            assert_eq!(bytes, expect, "batch_size={batch_size}");
            assert_eq!(stats.events, 50);
        }
    }

    #[test]
    fn v2_header_declares_version_two() {
        let mut w = TraceWriter::new_v2(Vec::new(), None).unwrap();
        assert_eq!(w.version(), format::VERSION_V2);
        w.on_read(0, 4, Pc(1), Tid(3));
        let (bytes, stats) = w.finish(1).unwrap();
        assert_eq!(&bytes[..4], b"ALCT");
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), format::VERSION_V2);
        assert_eq!(stats.events, 1);
    }

    #[test]
    fn v1_writer_rejects_non_main_tids_at_finish() {
        let mut w = TraceWriter::new(Vec::new(), None).unwrap();
        w.on_read(0, 4, Pc(1), Tid::MAIN);
        w.on_read(1, 5, Pc(2), Tid(1)); // no tid column in v1: deferred error
        assert!(matches!(w.finish(2), Err(TraceError::Malformed(_))));
    }

    #[test]
    fn v2_single_threaded_payload_costs_one_byte_per_event() {
        // The tid column for an all-main chunk is one zero byte per event.
        let record = |mut w: TraceWriter<Vec<u8>>| {
            for i in 0..10u64 {
                w.on_read(i, i as u32, Pc(0), Tid::MAIN);
            }
            w.finish(10).unwrap().1
        };
        let v1 = record(TraceWriter::new(Vec::new(), None).unwrap());
        let v2 = record(TraceWriter::new_v2(Vec::new(), None).unwrap());
        assert_eq!(v2.bytes, v1.bytes + 10);
    }

    #[test]
    fn v3_adds_exactly_one_crc_word_per_chunk_over_v2() {
        let record = |mut w: TraceWriter<Vec<u8>>| {
            for i in 0..10u64 {
                w.on_read(i, i as u32, Pc(0), Tid::MAIN);
            }
            w.finish(10).unwrap()
        };
        let (_, v2) = record(TraceWriter::new_v2(Vec::new(), None).unwrap());
        let (bytes, v3) = record(TraceWriter::new_v3(Vec::new(), None).unwrap());
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), format::VERSION_V3);
        // One data chunk + the footer, 4 CRC bytes each.
        assert_eq!(v3.bytes, v2.bytes + 8);
        assert_eq!(v3.chunks, 1);
    }

    #[test]
    fn deferred_io_errors_surface_at_finish() {
        /// A writer that accepts the header, then fails.
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::Error::other("disk full"));
                }
                self.0 = self.0.saturating_sub(1);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = TraceWriter::new(FailAfter(1), None)
            .unwrap()
            .with_chunk_capacity(1);
        w.on_read(0, 0, Pc(0), Tid::MAIN); // flush fails here, silently deferred
        w.on_read(1, 1, Pc(1), Tid::MAIN); // writer is quiescent
        assert!(matches!(w.finish(2), Err(TraceError::Io(_))));
    }
}
