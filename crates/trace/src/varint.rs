//! LEB128 variable-length integers and zigzag signed mapping.
//!
//! All multi-byte quantities in the trace format are unsigned LEB128:
//! seven payload bits per byte, least-significant group first, high bit set
//! on every byte but the last. Signed deltas are first mapped through
//! zigzag (`0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`) so small magnitudes
//! of either sign stay one byte.

use crate::error::TraceError;

/// Longest legal encoding of a `u64` (10 × 7 bits ≥ 64 bits).
pub const MAX_VARINT_BYTES: usize = 10;

/// Appends the LEB128 encoding of `v` to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends the zigzag-LEB128 encoding of `v` to `out`.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Maps a signed value to its zigzag unsigned form.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverts [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Decodes a LEB128 `u64` from `buf[*pos..]`, advancing `*pos`.
///
/// # Errors
///
/// [`TraceError::Truncated`] if the buffer ends mid-varint and
/// [`TraceError::Malformed`] if the encoding overruns 64 bits.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for _ in 0..MAX_VARINT_BYTES {
        let Some(&byte) = buf.get(*pos) else {
            return Err(TraceError::Truncated("varint"));
        };
        *pos += 1;
        let group = u64::from(byte & 0x7f);
        if shift == 63 && group > 1 {
            return Err(TraceError::Malformed("varint overflows u64"));
        }
        v |= group << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
    Err(TraceError::Malformed("varint longer than 10 bytes"))
}

/// Decodes a zigzag-LEB128 `i64` from `buf[*pos..]`, advancing `*pos`.
///
/// # Errors
///
/// Same conditions as [`read_u64`].
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Result<i64, TraceError> {
    Ok(unzigzag(read_u64(buf, pos)?))
}

/// Decodes a LEB128 `u64` directly from a reader (used for chunk headers).
///
/// # Errors
///
/// [`TraceError::Io`] on read failures, [`TraceError::Truncated`] on EOF
/// mid-varint, [`TraceError::Malformed`] on overlong encodings. A clean EOF
/// *before the first byte* is reported as `Ok(None)` so callers can detect
/// end-of-stream.
pub fn read_u64_from(r: &mut impl std::io::Read) -> Result<Option<u64>, TraceError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for i in 0..MAX_VARINT_BYTES {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                if i == 0 {
                    return Ok(None);
                }
                return Err(TraceError::Truncated("varint"));
            }
            Err(e) => return Err(e.into()),
        }
        let group = u64::from(byte[0] & 0x7f);
        if shift == 63 && group > 1 {
            return Err(TraceError::Malformed("varint overflows u64"));
        }
        v |= group << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(Some(v));
        }
        shift += 7;
    }
    Err(TraceError::Malformed("varint longer than 10 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_u64() {
        for v in [0, 1, 127, 128, 300, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn roundtrips_i64() {
        for v in [0, -1, 1, -64, 64, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn small_magnitudes_are_one_byte() {
        for v in [-63i64, -1, 0, 1, 63] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            assert_eq!(buf.len(), 1, "{v} should be one byte");
        }
    }

    #[test]
    fn truncated_and_overlong_are_typed_errors() {
        let mut pos = 0;
        assert!(matches!(
            read_u64(&[0x80, 0x80], &mut pos),
            Err(TraceError::Truncated(_))
        ));
        let mut pos = 0;
        assert!(matches!(
            read_u64(&[0xff; 11], &mut pos),
            Err(TraceError::Malformed(_))
        ));
    }

    #[test]
    fn reader_eof_before_first_byte_is_none() {
        let mut empty: &[u8] = &[];
        assert!(read_u64_from(&mut empty).unwrap().is_none());
        let mut cut: &[u8] = &[0x80];
        assert!(matches!(
            read_u64_from(&mut cut),
            Err(TraceError::Truncated(_))
        ));
    }
}
