//! `.alcp` — persistent dependence-profile artifacts.
//!
//! A [`DepProfile`] normally dies with the process that computed it; every
//! further question pays a re-run or a re-replay of the trace. This module
//! makes the profile itself a durable artifact, the same way
//! [`writer`](crate::writer)/[`reader`](crate::reader) make the event
//! stream one: a [`ProfileArtifact`] bundles a sealed profile with the
//! mini-C source it came from (so offline queries can rebuild the module
//! for symbolization) and, optionally, the [`TaskTrace`] summary of the
//! best parallelization candidate (so `advise` can simulate offline,
//! without the event stream).
//!
//! ## Wire format (version 1)
//!
//! Same toolbox as `.alct` (LEB128 varints, zigzag deltas, sanity caps,
//! typed errors for every structural defect), but a single self-contained
//! block rather than a chunk stream — profiles are small:
//!
//! ```text
//! magic  "ALCP"
//! u16le  version (= 1)
//! u16le  flags (bit 0: embedded source, bit 1: embedded task summary)
//! [flag] source: varint byte length + UTF-8 bytes
//! profile:
//!   varints total_steps, dropped_readers, intra_thread_deps,
//!           cross_thread_deps, shadow.pages_allocated,
//!           shadow.read_set_spills, construct count
//!   constructs ascending by head pc:
//!     head (delta vs previous construct), kind byte, ttotal, inst
//!     edges ascending by (kind, head, tail):
//!       kind byte, head (zigzag delta), tail (zigzag delta vs head),
//!       min_tdep, count, cross_count, sample_addr, sample tids
//!     nesting counts ascending by ancestor pc
//! [flag] task summary: tasks (head/t_enter/duration deltas), main joins,
//!        task edges, cross_thread_sharing, total_steps
//! ```
//!
//! The encoder emits constructs, edges and nesting entries in **sorted
//! order** and the decoder rejects any other order, so the encoding is
//! canonical: `save -> load -> save` reproduces the file byte for byte,
//! and two artifacts with equal contents are equal as byte strings — which
//! is what lets CI `cmp` a merged artifact against a directly aggregated
//! one. Corrupt or unsupported input decodes to a typed [`AlcpError`],
//! never a panic.

use crate::error::TraceError;
use crate::format::MAX_SOURCE_BYTES;
use crate::varint::{read_u64, write_i64, write_u64};
use alchemist_core::{
    ConstructId, ConstructKind, DepKind, DepProfile, EdgeKey, EdgeStat, PartialProfile,
};
use alchemist_obs::{Counter, Metrics};
use alchemist_parsim::{TaskId, TaskInstance, TaskTrace};
use alchemist_vm::Pc;
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

/// First four bytes of every profile artifact.
pub const ALCP_MAGIC: [u8; 4] = *b"ALCP";

/// Schema version this module reads and writes.
pub const ALCP_VERSION: u16 = 1;

/// Oldest schema version this reader accepts.
pub const ALCP_MIN_VERSION: u16 = 1;

/// Flag bit: the artifact embeds the profiled program's mini-C source.
pub const FLAG_SOURCE: u16 = 1;

/// Flag bit: the artifact embeds a [`TaskTrace`] summary for offline
/// `advise` simulation.
pub const FLAG_TASKS: u16 = 1 << 1;

const KNOWN_FLAGS: u16 = FLAG_SOURCE | FLAG_TASKS;

/// Why reading, writing or merging a profile artifact failed.
#[derive(Debug)]
pub enum AlcpError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The file does not start with the `ALCP` magic.
    BadMagic([u8; 4]),
    /// The artifact's schema version is outside the supported range.
    UnsupportedVersion {
        /// Version declared by the file.
        found: u16,
        /// Oldest version this reader accepts.
        min_supported: u16,
        /// Newest version this reader accepts.
        max_supported: u16,
    },
    /// The header carries flag bits this reader does not define.
    UnknownFlags(u16),
    /// The embedded source program is not valid UTF-8.
    CorruptSource(std::str::Utf8Error),
    /// A construct or dependence kind byte carried an undefined tag.
    BadKindTag(u8),
    /// The buffer ended where the format promised more bytes.
    Truncated(&'static str),
    /// A structurally invalid value was decoded (context in the message).
    Malformed(&'static str),
    /// Two artifacts being merged embed different program sources; their
    /// profiles are keyed by different code layouts and must not be mixed.
    SourceMismatch,
}

impl fmt::Display for AlcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlcpError::Io(e) => write!(f, "profile artifact I/O error: {e}"),
            AlcpError::BadMagic(m) => {
                write!(f, "not an Alchemist profile artifact (bad magic {m:02x?})")
            }
            AlcpError::UnsupportedVersion {
                found,
                min_supported,
                max_supported,
            } => write!(
                f,
                "unsupported profile artifact version {found} \
                 (supported {min_supported}..={max_supported})"
            ),
            AlcpError::UnknownFlags(bits) => {
                write!(f, "profile artifact carries unknown flag bits {bits:#06x}")
            }
            AlcpError::CorruptSource(e) => {
                write!(f, "embedded source is not UTF-8: {e}")
            }
            AlcpError::BadKindTag(tag) => write!(f, "undefined kind tag {tag}"),
            AlcpError::Truncated(what) => write!(f, "truncated profile artifact: {what}"),
            AlcpError::Malformed(what) => write!(f, "malformed profile artifact: {what}"),
            AlcpError::SourceMismatch => {
                write!(f, "cannot merge profile artifacts: embedded sources differ")
            }
        }
    }
}

impl Error for AlcpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AlcpError::Io(e) => Some(e),
            AlcpError::CorruptSource(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AlcpError {
    fn from(e: std::io::Error) -> Self {
        AlcpError::Io(e)
    }
}

impl From<TraceError> for AlcpError {
    fn from(e: TraceError) -> Self {
        match e {
            TraceError::Io(e) => AlcpError::Io(e),
            TraceError::Truncated(what) => AlcpError::Truncated(what),
            TraceError::Malformed(what) => AlcpError::Malformed(what),
            // The varint helpers only produce the variants above.
            _ => AlcpError::Malformed("unexpected trace-layer error"),
        }
    }
}

/// A persistent, mergeable profile artifact (`.alcp` file contents).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileArtifact {
    /// The sealed dependence profile.
    pub profile: DepProfile,
    /// The profiled program's mini-C source, when embedded: offline
    /// queries recompile it to resolve pcs to names and lines.
    pub source: Option<String>,
    /// Task summary of the best parallelization candidate at save time,
    /// when embedded: lets `advise` simulate offline. Dropped by
    /// [`merge`](ProfileArtifact::merge) — a schedule of one run does not
    /// describe the union of several.
    pub tasks: Option<TaskTrace>,
}

impl ProfileArtifact {
    /// Wraps a sealed profile with no embedded source or task summary.
    pub fn new(profile: DepProfile) -> Self {
        ProfileArtifact {
            profile,
            source: None,
            tasks: None,
        }
    }

    /// Embeds the profiled program's source.
    pub fn with_source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Embeds a task summary for offline `advise`.
    pub fn with_tasks(mut self, tasks: TaskTrace) -> Self {
        self.tasks = Some(tasks);
        self
    }

    /// Merges another artifact into this one.
    ///
    /// The profiles merge through [`PartialProfile`] (order-independent:
    /// commutative, associative, empty identity), sources must agree when
    /// both are present (an artifact without one adopts the other's), and
    /// any embedded task summary is dropped. Increments the
    /// `profile.merges` counter when `metrics` is given.
    ///
    /// # Errors
    ///
    /// [`AlcpError::SourceMismatch`] when both artifacts embed a source
    /// and the sources differ; `self` is left unchanged in that case.
    pub fn merge(
        &mut self,
        other: ProfileArtifact,
        metrics: Option<&Metrics>,
    ) -> Result<(), AlcpError> {
        match (&self.source, other.source) {
            (Some(a), Some(b)) if *a != b => return Err(AlcpError::SourceMismatch),
            (None, Some(b)) => self.source = Some(b),
            _ => {}
        }
        self.tasks = None;
        let mut partial = PartialProfile::from(std::mem::take(&mut self.profile));
        partial.merge(&PartialProfile::from(other.profile));
        self.profile = partial.seal();
        if let Some(m) = metrics {
            m.incr(Counter::ProfileMerges);
        }
        Ok(())
    }

    /// Encodes the artifact into its canonical byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&ALCP_MAGIC);
        out.extend_from_slice(&ALCP_VERSION.to_le_bytes());
        let mut flags = 0u16;
        if self.source.is_some() {
            flags |= FLAG_SOURCE;
        }
        if self.tasks.is_some() {
            flags |= FLAG_TASKS;
        }
        out.extend_from_slice(&flags.to_le_bytes());
        if let Some(src) = &self.source {
            write_u64(&mut out, src.len() as u64);
            out.extend_from_slice(src.as_bytes());
        }
        encode_profile(&mut out, &self.profile);
        if let Some(tasks) = &self.tasks {
            encode_tasks(&mut out, tasks);
        }
        out
    }

    /// Decodes an artifact from bytes.
    ///
    /// # Errors
    ///
    /// A typed [`AlcpError`] for every structural defect: foreign magic,
    /// unsupported version, unknown flags, truncation, out-of-order or
    /// otherwise malformed sections, undefined kind tags, non-UTF-8
    /// source. Trailing bytes after the last section are rejected too, so
    /// a valid artifact has exactly one byte representation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, AlcpError> {
        let mut pos = 0usize;
        let magic: [u8; 4] = bytes
            .get(..4)
            .ok_or(AlcpError::Truncated("magic"))?
            .try_into()
            .expect("4-byte slice");
        if magic != ALCP_MAGIC {
            return Err(AlcpError::BadMagic(magic));
        }
        pos += 4;
        let version = read_u16le(bytes, &mut pos).ok_or(AlcpError::Truncated("version"))?;
        if !(ALCP_MIN_VERSION..=ALCP_VERSION).contains(&version) {
            return Err(AlcpError::UnsupportedVersion {
                found: version,
                min_supported: ALCP_MIN_VERSION,
                max_supported: ALCP_VERSION,
            });
        }
        let flags = read_u16le(bytes, &mut pos).ok_or(AlcpError::Truncated("flags"))?;
        if flags & !KNOWN_FLAGS != 0 {
            return Err(AlcpError::UnknownFlags(flags & !KNOWN_FLAGS));
        }
        let source = if flags & FLAG_SOURCE != 0 {
            let len = read_u64(bytes, &mut pos)?;
            if len > MAX_SOURCE_BYTES {
                return Err(AlcpError::Malformed("embedded source exceeds sanity limit"));
            }
            let end = pos
                .checked_add(len as usize)
                .filter(|&e| e <= bytes.len())
                .ok_or(AlcpError::Truncated("embedded source"))?;
            let src = std::str::from_utf8(&bytes[pos..end])
                .map_err(AlcpError::CorruptSource)?
                .to_owned();
            pos = end;
            Some(src)
        } else {
            None
        };
        let profile = decode_profile(bytes, &mut pos)?;
        let tasks = if flags & FLAG_TASKS != 0 {
            Some(decode_tasks(bytes, &mut pos)?)
        } else {
            None
        };
        if pos != bytes.len() {
            return Err(AlcpError::Malformed("trailing bytes after last section"));
        }
        Ok(ProfileArtifact {
            profile,
            source,
            tasks,
        })
    }

    /// Encodes and writes the artifact, returning the byte count.
    /// Increments `profile.saves` when `metrics` is given.
    ///
    /// # Errors
    ///
    /// [`AlcpError::Io`] when the writer fails.
    pub fn save_to(&self, mut w: impl Write, metrics: Option<&Metrics>) -> Result<u64, AlcpError> {
        let bytes = self.to_bytes();
        w.write_all(&bytes)?;
        w.flush()?;
        if let Some(m) = metrics {
            m.incr(Counter::ProfileSaves);
        }
        Ok(bytes.len() as u64)
    }

    /// Reads a complete artifact from a reader. Increments `profile.loads`
    /// when `metrics` is given.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ProfileArtifact::from_bytes`], plus
    /// [`AlcpError::Io`] on read failures.
    pub fn load_from(mut r: impl Read, metrics: Option<&Metrics>) -> Result<Self, AlcpError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        let artifact = ProfileArtifact::from_bytes(&bytes)?;
        if let Some(m) = metrics {
            m.incr(Counter::ProfileLoads);
        }
        Ok(artifact)
    }
}

fn read_u16le(bytes: &[u8], pos: &mut usize) -> Option<u16> {
    let v = bytes.get(*pos..*pos + 2)?;
    *pos += 2;
    Some(u16::from_le_bytes([v[0], v[1]]))
}

fn construct_kind_tag(kind: ConstructKind) -> u8 {
    match kind {
        ConstructKind::Method => 0,
        ConstructKind::Loop => 1,
        ConstructKind::Branch => 2,
    }
}

fn construct_kind_from(tag: u8) -> Result<ConstructKind, AlcpError> {
    match tag {
        0 => Ok(ConstructKind::Method),
        1 => Ok(ConstructKind::Loop),
        2 => Ok(ConstructKind::Branch),
        t => Err(AlcpError::BadKindTag(t)),
    }
}

fn dep_kind_tag(kind: DepKind) -> u8 {
    match kind {
        DepKind::Raw => 0,
        DepKind::War => 1,
        DepKind::Waw => 2,
    }
}

fn dep_kind_from(tag: u8) -> Result<DepKind, AlcpError> {
    match tag {
        0 => Ok(DepKind::Raw),
        1 => Ok(DepKind::War),
        2 => Ok(DepKind::Waw),
        t => Err(AlcpError::BadKindTag(t)),
    }
}

fn read_byte(bytes: &[u8], pos: &mut usize, what: &'static str) -> Result<u8, AlcpError> {
    let b = *bytes.get(*pos).ok_or(AlcpError::Truncated(what))?;
    *pos += 1;
    Ok(b)
}

/// Guards a decoded element count against the bytes actually remaining
/// (every element costs at least one byte), so a corrupt count can never
/// trigger a giant allocation or a long busy loop.
fn check_count(n: u64, bytes: &[u8], pos: usize, what: &'static str) -> Result<usize, AlcpError> {
    if n > (bytes.len() - pos) as u64 {
        return Err(AlcpError::Truncated(what));
    }
    Ok(n as usize)
}

fn encode_profile(out: &mut Vec<u8>, profile: &DepProfile) {
    write_u64(out, profile.total_steps);
    write_u64(out, profile.dropped_readers);
    write_u64(out, profile.intra_thread_deps);
    write_u64(out, profile.cross_thread_deps);
    write_u64(out, profile.shadow_stats.pages_allocated);
    write_u64(out, profile.shadow_stats.read_set_spills);
    let mut constructs: Vec<_> = profile.constructs().collect();
    constructs.sort_by_key(|c| c.id.head);
    write_u64(out, constructs.len() as u64);
    let mut prev_head = 0u64;
    for (i, c) in constructs.iter().enumerate() {
        let head = u64::from(c.id.head.0);
        // First head is absolute; later ones are gaps (strictly positive,
        // which is what makes the ascending order checkable on decode).
        write_u64(out, if i == 0 { head } else { head - prev_head });
        prev_head = head;
        out.push(construct_kind_tag(c.id.kind));
        write_u64(out, c.ttotal);
        write_u64(out, c.inst);
        let mut edges: Vec<_> = c.edges.iter().collect();
        edges.sort_by_key(|(k, _)| **k);
        write_u64(out, edges.len() as u64);
        let mut prev_edge_head = c.id.head.0;
        for (key, stat) in edges {
            out.push(dep_kind_tag(key.kind));
            write_i64(out, i64::from(key.head.0) - i64::from(prev_edge_head));
            write_i64(out, i64::from(key.tail.0) - i64::from(key.head.0));
            prev_edge_head = key.head.0;
            write_u64(out, stat.min_tdep);
            write_u64(out, stat.count);
            write_u64(out, stat.cross_count);
            write_u64(out, u64::from(stat.sample_addr));
            write_u64(out, u64::from(stat.sample_tids.0));
            write_u64(out, u64::from(stat.sample_tids.1));
        }
        let mut nested: Vec<_> = c.nested_in.iter().map(|(a, n)| (*a, *n)).collect();
        nested.sort_by_key(|(a, _)| *a);
        write_u64(out, nested.len() as u64);
        let mut prev_anc = 0u64;
        for (j, (ancestor, count)) in nested.iter().enumerate() {
            let anc = u64::from(ancestor.0);
            write_u64(out, if j == 0 { anc } else { anc - prev_anc });
            prev_anc = anc;
            write_u64(out, *count);
        }
    }
}

fn read_pc(v: u64, what: &'static str) -> Result<Pc, AlcpError> {
    u32::try_from(v)
        .map(Pc)
        .map_err(|_| AlcpError::Malformed(what))
}

fn read_u32(bytes: &[u8], pos: &mut usize, what: &'static str) -> Result<u32, AlcpError> {
    u32::try_from(read_u64(bytes, pos)?).map_err(|_| AlcpError::Malformed(what))
}

fn decode_profile(bytes: &[u8], pos: &mut usize) -> Result<DepProfile, AlcpError> {
    let mut profile = DepProfile::new();
    profile.total_steps = read_u64(bytes, pos)?;
    profile.dropped_readers = read_u64(bytes, pos)?;
    profile.intra_thread_deps = read_u64(bytes, pos)?;
    profile.cross_thread_deps = read_u64(bytes, pos)?;
    profile.shadow_stats.pages_allocated = read_u64(bytes, pos)?;
    profile.shadow_stats.read_set_spills = read_u64(bytes, pos)?;
    let n_constructs = check_count(read_u64(bytes, pos)?, bytes, *pos, "construct table")?;
    let mut prev_head = 0u64;
    for i in 0..n_constructs {
        let delta = read_u64(bytes, pos)?;
        if i > 0 && delta == 0 {
            return Err(AlcpError::Malformed(
                "construct heads not strictly ascending",
            ));
        }
        let head = if i == 0 { delta } else { prev_head + delta };
        prev_head = head;
        let head = read_pc(head, "construct head exceeds pc range")?;
        let kind = construct_kind_from(read_byte(bytes, pos, "construct kind")?)?;
        let id = ConstructId::new(head, kind);
        let ttotal = read_u64(bytes, pos)?;
        let inst = read_u64(bytes, pos)?;
        profile.merge_duration(id, ttotal, inst);
        let n_edges = check_count(read_u64(bytes, pos)?, bytes, *pos, "edge table")?;
        let mut prev_edge_head = head.0;
        let mut prev_key: Option<EdgeKey> = None;
        for _ in 0..n_edges {
            let kind = dep_kind_from(read_byte(bytes, pos, "edge kind")?)?;
            let eh = i64::from(prev_edge_head) + crate::varint::read_i64(bytes, pos)?;
            let eh = u32::try_from(eh).map_err(|_| AlcpError::Malformed("edge head pc"))?;
            let et = i64::from(eh) + crate::varint::read_i64(bytes, pos)?;
            let et = u32::try_from(et).map_err(|_| AlcpError::Malformed("edge tail pc"))?;
            prev_edge_head = eh;
            let key = EdgeKey {
                kind,
                head: Pc(eh),
                tail: Pc(et),
            };
            if prev_key.is_some_and(|p| p >= key) {
                return Err(AlcpError::Malformed("edges not strictly ascending"));
            }
            prev_key = Some(key);
            let stat = EdgeStat {
                min_tdep: read_u64(bytes, pos)?,
                count: read_u64(bytes, pos)?,
                cross_count: read_u64(bytes, pos)?,
                sample_addr: read_u32(bytes, pos, "sample address")?,
                sample_tids: (
                    read_u32(bytes, pos, "sample thread id")?,
                    read_u32(bytes, pos, "sample thread id")?,
                ),
            };
            profile.merge_edge(id, key, stat);
        }
        let n_nested = check_count(read_u64(bytes, pos)?, bytes, *pos, "nesting table")?;
        let mut prev_anc = 0u64;
        for j in 0..n_nested {
            let delta = read_u64(bytes, pos)?;
            if j > 0 && delta == 0 {
                return Err(AlcpError::Malformed(
                    "nesting ancestors not strictly ascending",
                ));
            }
            let anc = if j == 0 { delta } else { prev_anc + delta };
            prev_anc = anc;
            let anc = read_pc(anc, "nesting ancestor exceeds pc range")?;
            let count = read_u64(bytes, pos)?;
            profile.merge_nested(id, anc, count);
        }
    }
    Ok(profile)
}

fn encode_tasks(out: &mut Vec<u8>, tasks: &TaskTrace) {
    write_u64(out, tasks.tasks.len() as u64);
    let mut prev_head = 0u32;
    let mut prev_enter = 0u64;
    for t in &tasks.tasks {
        write_i64(out, i64::from(t.head.0) - i64::from(prev_head));
        prev_head = t.head.0;
        // Tasks are ordered by t_enter, so the enter delta is unsigned.
        write_u64(out, t.t_enter - prev_enter);
        prev_enter = t.t_enter;
        write_u64(out, t.t_exit.saturating_sub(t.t_enter));
    }
    write_u64(out, tasks.main_joins.len() as u64);
    let mut prev_pos = 0i64;
    for (seq_pos, task) in &tasks.main_joins {
        write_i64(out, *seq_pos as i64 - prev_pos);
        prev_pos = *seq_pos as i64;
        write_u64(out, u64::from(task.0));
    }
    write_u64(out, tasks.task_edges.len() as u64);
    for (from, to) in &tasks.task_edges {
        write_u64(out, u64::from(from.0));
        write_u64(out, u64::from(to.0));
    }
    write_u64(out, tasks.cross_thread_sharing);
    write_u64(out, tasks.total_steps);
}

fn decode_tasks(bytes: &[u8], pos: &mut usize) -> Result<TaskTrace, AlcpError> {
    let mut trace = TaskTrace::default();
    let n_tasks = check_count(read_u64(bytes, pos)?, bytes, *pos, "task table")?;
    trace.tasks.reserve_exact(n_tasks);
    let mut prev_head = 0i64;
    let mut prev_enter = 0u64;
    for _ in 0..n_tasks {
        let head = prev_head + crate::varint::read_i64(bytes, pos)?;
        let head = u32::try_from(head).map_err(|_| AlcpError::Malformed("task head pc"))?;
        prev_head = i64::from(head);
        let t_enter = prev_enter
            .checked_add(read_u64(bytes, pos)?)
            .ok_or(AlcpError::Malformed("task enter time overflows"))?;
        prev_enter = t_enter;
        let t_exit = t_enter
            .checked_add(read_u64(bytes, pos)?)
            .ok_or(AlcpError::Malformed("task exit time overflows"))?;
        trace.tasks.push(TaskInstance {
            head: Pc(head),
            t_enter,
            t_exit,
        });
    }
    let n_joins = check_count(read_u64(bytes, pos)?, bytes, *pos, "join table")?;
    trace.main_joins.reserve_exact(n_joins);
    let mut prev_pos = 0i64;
    for _ in 0..n_joins {
        let seq = prev_pos + crate::varint::read_i64(bytes, pos)?;
        let seq = u64::try_from(seq).map_err(|_| AlcpError::Malformed("join position"))?;
        prev_pos = seq as i64;
        let task = read_u32(bytes, pos, "join task id")?;
        trace.main_joins.push((seq, TaskId(task)));
    }
    let n_edges = check_count(read_u64(bytes, pos)?, bytes, *pos, "task edge table")?;
    trace.task_edges.reserve_exact(n_edges);
    for _ in 0..n_edges {
        let from = read_u32(bytes, pos, "task edge endpoint")?;
        let to = read_u32(bytes, pos, "task edge endpoint")?;
        trace.task_edges.push((TaskId(from), TaskId(to)));
    }
    trace.cross_thread_sharing = read_u64(bytes, pos)?;
    trace.total_steps = read_u64(bytes, pos)?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> DepProfile {
        let mut p = DepProfile::new();
        p.total_steps = 1234;
        p.dropped_readers = 1;
        p.intra_thread_deps = 5;
        p.cross_thread_deps = 2;
        p.shadow_stats.pages_allocated = 3;
        p.shadow_stats.read_set_spills = 1;
        let main = ConstructId::new(Pc(0), ConstructKind::Method);
        let lp = ConstructId::new(Pc(17), ConstructKind::Loop);
        p.merge_duration(main, 1234, 1);
        p.merge_duration(lp, 900, 30);
        p.merge_edge(
            lp,
            EdgeKey {
                kind: DepKind::Raw,
                head: Pc(21),
                tail: Pc(9),
            },
            EdgeStat {
                min_tdep: 4,
                count: 29,
                cross_count: 2,
                sample_addr: 7,
                sample_tids: (0, 1),
            },
        );
        p.merge_edge(
            lp,
            EdgeKey {
                kind: DepKind::War,
                head: Pc(9),
                tail: Pc(21),
            },
            EdgeStat {
                min_tdep: 11,
                count: 3,
                cross_count: 0,
                sample_addr: 7,
                sample_tids: (0, 0),
            },
        );
        p.merge_nested(lp, Pc(0), 30);
        p
    }

    fn sample_tasks() -> TaskTrace {
        TaskTrace {
            tasks: vec![
                TaskInstance {
                    head: Pc(17),
                    t_enter: 10,
                    t_exit: 40,
                },
                TaskInstance {
                    head: Pc(17),
                    t_enter: 45,
                    t_exit: 80,
                },
            ],
            main_joins: vec![(60, TaskId(0))],
            task_edges: vec![(TaskId(0), TaskId(1))],
            cross_thread_sharing: 4,
            total_steps: 1234,
        }
    }

    #[test]
    fn round_trips_byte_identical() {
        let artifact = ProfileArtifact::new(sample_profile())
            .with_source("int main() { return 0; }")
            .with_tasks(sample_tasks());
        let bytes = artifact.to_bytes();
        let decoded = ProfileArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, artifact);
        // Shadow stats are excluded from DepProfile equality; pin them
        // separately to prove the round trip is lossless.
        assert_eq!(decoded.profile.shadow_stats, artifact.profile.shadow_stats);
        assert_eq!(decoded.to_bytes(), bytes, "canonical re-encode");
    }

    #[test]
    fn save_load_and_counters() {
        let m = Metrics::new();
        let artifact = ProfileArtifact::new(sample_profile());
        let mut buf = Vec::new();
        let n = artifact.save_to(&mut buf, Some(&m)).unwrap();
        assert_eq!(n as usize, buf.len());
        let back = ProfileArtifact::load_from(buf.as_slice(), Some(&m)).unwrap();
        assert_eq!(back, artifact);
        assert_eq!(m.get(Counter::ProfileSaves), 1);
        assert_eq!(m.get(Counter::ProfileLoads), 1);
    }

    #[test]
    fn merge_is_order_independent_and_drops_tasks() {
        let m = Metrics::new();
        let a = ProfileArtifact::new(sample_profile())
            .with_source("src")
            .with_tasks(sample_tasks());
        let mut b = ProfileArtifact::new(sample_profile()).with_source("src");
        b.profile.total_steps = 99;
        let mut ab = a.clone();
        ab.merge(b.clone(), Some(&m)).unwrap();
        let mut ba = b.clone();
        ba.merge(a.clone(), Some(&m)).unwrap();
        assert_eq!(ab.to_bytes(), ba.to_bytes(), "merge is commutative");
        assert!(ab.tasks.is_none(), "merged artifacts drop task summaries");
        assert_eq!(m.get(Counter::ProfileMerges), 2);
    }

    #[test]
    fn merge_rejects_mismatched_sources() {
        let mut a = ProfileArtifact::new(sample_profile()).with_source("int a;");
        let before = a.clone();
        let b = ProfileArtifact::new(sample_profile()).with_source("int b;");
        assert!(matches!(a.merge(b, None), Err(AlcpError::SourceMismatch)));
        assert_eq!(a, before, "failed merge leaves the base unchanged");
    }

    #[test]
    fn corrupt_inputs_are_typed_errors() {
        let artifact = ProfileArtifact::new(sample_profile()).with_source("int main;");
        let bytes = artifact.to_bytes();
        assert!(matches!(
            ProfileArtifact::from_bytes(b"ALCT"),
            Err(AlcpError::BadMagic(_))
        ));
        let mut future = bytes.clone();
        future[4] = 9;
        assert!(matches!(
            ProfileArtifact::from_bytes(&future),
            Err(AlcpError::UnsupportedVersion { found: 9, .. })
        ));
        let mut flagged = bytes.clone();
        flagged[6] |= 0x80;
        assert!(matches!(
            ProfileArtifact::from_bytes(&flagged),
            Err(AlcpError::UnknownFlags(_))
        ));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            ProfileArtifact::from_bytes(&trailing),
            Err(AlcpError::Malformed(_))
        ));
        // Every truncation point decodes to a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(
                ProfileArtifact::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }
}
