//! Property tests for batched trace round-trips: for arbitrary event
//! sequences, encoding through `TraceWriter::on_batch` must produce the
//! byte-identical `.alct` stream the per-event path produces, and decoding
//! through the batched readers (`read_batch`, `decode_batches_par`) must
//! reproduce the per-event round-trip exactly — including when batch and
//! chunk boundaries disagree, so batches straddle chunk edges both ways.
//!
//! The v2 (threaded) format gets the same treatment with arbitrary tid
//! streams: thread ids must survive every encode/decode path bit-exactly,
//! across chunk boundaries, at any batch granularity.

use alchemist_lang::hir::FuncId;
use alchemist_trace::{decode_batches_par, TraceReader, TraceWriter};
use alchemist_vm::{BlockId, Event, EventBatch, Pc, Tid, TraceSink};
use proptest::prelude::*;

/// One raw generated row: (timestamp delta, kind selector, field a,
/// field b, tid selector).
type RawEvent = (u64, u8, u32, u32, u8);

/// Materializes raw rows into a valid event stream (non-decreasing
/// timestamps, every kind reachable) and its final step count. `tid_mod`
/// folds the tid selector onto that many distinct threads (1 = all events
/// on [`Tid::MAIN`], the v1 shape).
fn build_events(raw: &[RawEvent], tid_mod: u32) -> (Vec<Event>, u64) {
    let mut t = 0u64;
    let mut events = Vec::with_capacity(raw.len());
    for &(dt, kind, a, b, tsel) in raw {
        t += dt;
        let tid = Tid(u32::from(tsel) % tid_mod.max(1));
        events.push(match kind % 7 {
            0 => Event::Enter {
                t,
                func: FuncId(a % 64),
                fp: b,
                tid,
            },
            1 => Event::Exit {
                t,
                func: FuncId(a % 64),
                tid,
            },
            2 => Event::Block {
                t,
                block: BlockId(a % 512),
                tid,
            },
            3 => Event::Predicate {
                t,
                pc: Pc(a),
                block: BlockId(b % 512),
                taken: false,
                tid,
            },
            4 => Event::Predicate {
                t,
                pc: Pc(a),
                block: BlockId(b % 512),
                taken: true,
                tid,
            },
            5 => Event::Read {
                t,
                addr: a,
                pc: Pc(b),
                tid,
            },
            _ => Event::Write {
                t,
                addr: a,
                pc: Pc(b),
                tid,
            },
        });
    }
    (events, t + 1)
}

fn encode_per_event(events: &[Event], total_steps: u64, chunk_cap: usize, v2: bool) -> Vec<u8> {
    let w = if v2 {
        TraceWriter::new_v2(Vec::new(), None)
    } else {
        TraceWriter::new(Vec::new(), None)
    };
    let mut w = w.unwrap().with_chunk_capacity(chunk_cap);
    for e in events {
        e.dispatch(&mut w);
    }
    w.finish(total_steps).unwrap().0
}

/// Shared body: batched encode must equal per-event bytes, and all three
/// decode paths must reproduce the original events.
fn check_roundtrip(
    events: &[Event],
    total_steps: u64,
    chunk_cap: usize,
    write_batch: usize,
    read_batch: usize,
    v2: bool,
) {
    let per_event_bytes = encode_per_event(events, total_steps, chunk_cap, v2);

    // Batched encode: same bytes, chunk boundaries included.
    let w = if v2 {
        TraceWriter::new_v2(Vec::new(), None)
    } else {
        TraceWriter::new(Vec::new(), None)
    };
    let mut w = w.unwrap().with_chunk_capacity(chunk_cap);
    for sl in events.chunks(write_batch.max(1)) {
        w.on_batch(&EventBatch::from_events(sl));
    }
    let (batched_bytes, stats) = w.finish(total_steps).unwrap();
    prop_assert_eq!(&batched_bytes, &per_event_bytes);
    prop_assert_eq!(stats.events, events.len() as u64);

    // Per-event decode is the reference.
    let mut reader = TraceReader::new(per_event_bytes.as_slice()).unwrap();
    prop_assert_eq!(reader.version(), if v2 { 2 } else { 1 });
    let decoded: Vec<Event> = (&mut reader).map(|e| e.unwrap()).collect();
    prop_assert_eq!(&decoded, events);

    // Batched streaming decode at a granularity unrelated to the chunk
    // size, so batches regularly straddle chunk edges.
    let mut r = TraceReader::new(per_event_bytes.as_slice()).unwrap();
    let mut batch = EventBatch::new();
    let mut streamed = Vec::with_capacity(events.len());
    while r.read_batch(&mut batch, read_batch.max(1)).unwrap() {
        prop_assert!(batch.len() <= read_batch.max(1));
        streamed.extend(batch.iter());
    }
    prop_assert_eq!(&streamed, events);
    prop_assert_eq!(r.total_steps(), Some(total_steps));

    // Chunk-parallel batch decode.
    let (batches, summary) =
        decode_batches_par(TraceReader::new(per_event_bytes.as_slice()).unwrap(), 4).unwrap();
    let flat: Vec<Event> = batches.iter().flat_map(|b| b.iter()).collect();
    prop_assert_eq!(&flat, events);
    prop_assert_eq!(summary.events, events.len() as u64);
    prop_assert_eq!(summary.total_steps, total_steps);
}

proptest! {
    /// Writing via `on_batch` — at any batch granularity — produces the
    /// byte-identical trace, and both batched read paths decode it back to
    /// the original events, across chunk boundaries.
    #[test]
    fn batched_roundtrip_equals_per_event_roundtrip(
        raw in proptest::collection::vec(
            (0u64..40, 0u8..7, 0u32..100_000, 0u32..100_000, 0u8..1), 0..250),
        chunk_cap in 1usize..33,
        write_batch in 1usize..50,
        read_batch in 1usize..50,
    ) {
        let (events, total_steps) = build_events(&raw, 1);
        check_roundtrip(&events, total_steps, chunk_cap, write_batch, read_batch, false);
    }

    /// The v2 format round-trips arbitrary tid streams — including tid
    /// runs that straddle chunk boundaries (chunk caps as small as one
    /// event) and batch granularities unrelated to either.
    #[test]
    fn v2_roundtrip_preserves_arbitrary_tid_streams(
        raw in proptest::collection::vec(
            (0u64..40, 0u8..7, 0u32..100_000, 0u32..100_000, any::<u8>()), 0..250),
        tid_mod in 1u32..9,
        chunk_cap in 1usize..33,
        write_batch in 1usize..50,
        read_batch in 1usize..50,
    ) {
        let (events, total_steps) = build_events(&raw, tid_mod);
        check_roundtrip(&events, total_steps, chunk_cap, write_batch, read_batch, true);
    }

    /// A v2 trace of an all-main-thread stream decodes to exactly the same
    /// events as its v1 encoding — the tid column is pure overhead, never
    /// a semantic change.
    #[test]
    fn v2_of_single_threaded_stream_decodes_like_v1(
        raw in proptest::collection::vec(
            (0u64..40, 0u8..7, 0u32..100_000, 0u32..100_000, 0u8..1), 0..120),
        chunk_cap in 1usize..17,
    ) {
        let (events, total_steps) = build_events(&raw, 1);
        let v1 = encode_per_event(&events, total_steps, chunk_cap, false);
        let v2 = encode_per_event(&events, total_steps, chunk_cap, true);
        let d1: Vec<Event> = TraceReader::new(v1.as_slice()).unwrap().map(|e| e.unwrap()).collect();
        let d2: Vec<Event> = TraceReader::new(v2.as_slice()).unwrap().map(|e| e.unwrap()).collect();
        prop_assert_eq!(&d1, &events);
        prop_assert_eq!(&d2, &events);
    }

    /// An EventBatch is a lossless carrier: pushing any event sequence in
    /// and iterating it back is the identity — thread ids included.
    #[test]
    fn event_batch_is_lossless(
        raw in proptest::collection::vec(
            (0u64..1000, 0u8..7, 0u32..u32::MAX, 0u32..u32::MAX, any::<u8>()), 0..200),
    ) {
        let (events, _) = build_events(&raw, 256);
        let batch = EventBatch::from_events(&events);
        prop_assert_eq!(batch.len(), events.len());
        let back: Vec<Event> = batch.iter().collect();
        prop_assert_eq!(back, events);
    }
}
