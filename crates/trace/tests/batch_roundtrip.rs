//! Property tests for batched trace round-trips: for arbitrary event
//! sequences, encoding through `TraceWriter::on_batch` must produce the
//! byte-identical `.alct` stream the per-event path produces, and decoding
//! through the batched readers (`read_batch`, `decode_batches_par`) must
//! reproduce the per-event round-trip exactly — including when batch and
//! chunk boundaries disagree, so batches straddle chunk edges both ways.

use alchemist_lang::hir::FuncId;
use alchemist_trace::{decode_batches_par, TraceReader, TraceWriter};
use alchemist_vm::{BlockId, Event, EventBatch, Pc, TraceSink};
use proptest::prelude::*;

/// One raw generated row: (timestamp delta, kind selector, field a, field b).
type RawEvent = (u64, u8, u32, u32);

/// Materializes raw rows into a valid event stream (non-decreasing
/// timestamps, every kind reachable) and its final step count.
fn build_events(raw: &[RawEvent]) -> (Vec<Event>, u64) {
    let mut t = 0u64;
    let mut events = Vec::with_capacity(raw.len());
    for &(dt, kind, a, b) in raw {
        t += dt;
        events.push(match kind % 7 {
            0 => Event::Enter {
                t,
                func: FuncId(a % 64),
                fp: b,
            },
            1 => Event::Exit {
                t,
                func: FuncId(a % 64),
            },
            2 => Event::Block {
                t,
                block: BlockId(a % 512),
            },
            3 => Event::Predicate {
                t,
                pc: Pc(a),
                block: BlockId(b % 512),
                taken: false,
            },
            4 => Event::Predicate {
                t,
                pc: Pc(a),
                block: BlockId(b % 512),
                taken: true,
            },
            5 => Event::Read {
                t,
                addr: a,
                pc: Pc(b),
            },
            _ => Event::Write {
                t,
                addr: a,
                pc: Pc(b),
            },
        });
    }
    (events, t + 1)
}

fn encode_per_event(events: &[Event], total_steps: u64, chunk_cap: usize) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new(), None)
        .unwrap()
        .with_chunk_capacity(chunk_cap);
    for e in events {
        e.dispatch(&mut w);
    }
    w.finish(total_steps).unwrap().0
}

proptest! {
    /// Writing via `on_batch` — at any batch granularity — produces the
    /// byte-identical trace, and both batched read paths decode it back to
    /// the original events, across chunk boundaries.
    #[test]
    fn batched_roundtrip_equals_per_event_roundtrip(
        raw in proptest::collection::vec(
            (0u64..40, 0u8..7, 0u32..100_000, 0u32..100_000), 0..250),
        chunk_cap in 1usize..33,
        write_batch in 1usize..50,
        read_batch in 1usize..50,
    ) {
        let (events, total_steps) = build_events(&raw);
        let per_event_bytes = encode_per_event(&events, total_steps, chunk_cap);

        // Batched encode: same bytes, chunk boundaries included.
        let mut w = TraceWriter::new(Vec::new(), None)
            .unwrap()
            .with_chunk_capacity(chunk_cap);
        for sl in events.chunks(write_batch) {
            w.on_batch(&EventBatch::from_events(sl));
        }
        let (batched_bytes, stats) = w.finish(total_steps).unwrap();
        prop_assert_eq!(&batched_bytes, &per_event_bytes);
        prop_assert_eq!(stats.events, events.len() as u64);

        // Per-event decode is the reference.
        let decoded: Vec<Event> = TraceReader::new(per_event_bytes.as_slice())
            .unwrap()
            .map(|e| e.unwrap())
            .collect();
        prop_assert_eq!(&decoded, &events);

        // Batched streaming decode at a granularity unrelated to the chunk
        // size, so batches regularly straddle chunk edges.
        let mut r = TraceReader::new(per_event_bytes.as_slice()).unwrap();
        let mut batch = EventBatch::new();
        let mut streamed = Vec::with_capacity(events.len());
        while r.read_batch(&mut batch, read_batch).unwrap() {
            prop_assert!(batch.len() <= read_batch);
            streamed.extend(batch.iter());
        }
        prop_assert_eq!(&streamed, &events);
        prop_assert_eq!(r.total_steps(), Some(total_steps));

        // Chunk-parallel batch decode.
        let (batches, summary) =
            decode_batches_par(TraceReader::new(per_event_bytes.as_slice()).unwrap(), 4).unwrap();
        let flat: Vec<Event> = batches.iter().flat_map(|b| b.iter()).collect();
        prop_assert_eq!(&flat, &events);
        prop_assert_eq!(summary.events, events.len() as u64);
        prop_assert_eq!(summary.total_steps, total_steps);
    }

    /// An EventBatch is a lossless carrier: pushing any event sequence in
    /// and iterating it back is the identity.
    #[test]
    fn event_batch_is_lossless(
        raw in proptest::collection::vec(
            (0u64..1000, 0u8..7, 0u32..u32::MAX, 0u32..u32::MAX), 0..200),
    ) {
        let (events, _) = build_events(&raw);
        let batch = EventBatch::from_events(&events);
        prop_assert_eq!(batch.len(), events.len());
        let back: Vec<Event> = batch.iter().collect();
        prop_assert_eq!(back, events);
    }
}
