//! `.alcp` profile-artifact integration tests: lossless byte-identical
//! round trips for every bundled workload's real profile, canonical
//! re-encoding for arbitrary generated artifacts, and typed errors — never
//! panics — for corrupt input, including every possible truncation point
//! of a real artifact.

use alchemist_core::{
    profile_module, ConstructId, ConstructKind, DepKind, DepProfile, EdgeKey, EdgeStat,
    ProfileConfig,
};
use alchemist_parsim::{TaskId, TaskInstance, TaskTrace};
use alchemist_trace::{alcp, AlcpError, ProfileArtifact};
use alchemist_vm::Pc;
use alchemist_workloads::Scale;
use proptest::prelude::*;

/// Real profiles from the bundled suite round-trip losslessly, and the
/// re-encode of the decode reproduces the file byte for byte (the
/// canonical-encoding guarantee CI's `cmp`-based smoke relies on).
#[test]
fn every_workload_profile_round_trips_byte_identical() {
    for w in alchemist_workloads::all() {
        let module = w.module();
        let (profile, ..) = profile_module(
            &module,
            &w.exec_config(Scale::Tiny),
            ProfileConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
        let artifact = ProfileArtifact::new(profile).with_source(w.source);
        let bytes = artifact.to_bytes();
        let decoded = ProfileArtifact::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{}: decode failed: {e}", w.name));
        assert_eq!(decoded, artifact, "{}: lossy round trip", w.name);
        assert_eq!(
            decoded.profile.shadow_stats, artifact.profile.shadow_stats,
            "{}: shadow telemetry dropped",
            w.name
        );
        assert_eq!(
            decoded.to_bytes(),
            bytes,
            "{}: non-canonical encoding",
            w.name
        );
    }
}

#[test]
fn every_truncation_of_a_real_artifact_is_a_typed_error() {
    let w = &alchemist_workloads::all()[0];
    let module = w.module();
    let (profile, ..) = profile_module(
        &module,
        &w.exec_config(Scale::Tiny),
        ProfileConfig::default(),
    )
    .expect("workload runs");
    let artifact = ProfileArtifact::new(profile).with_source(w.source);
    let bytes = artifact.to_bytes();
    for cut in 0..bytes.len() {
        assert!(
            ProfileArtifact::from_bytes(&bytes[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte artifact must not decode",
            bytes.len()
        );
    }
    // Structural corruption beyond truncation.
    assert!(matches!(
        ProfileArtifact::from_bytes(b"ALCT\x01\x00\x00\x00"),
        Err(AlcpError::BadMagic(_))
    ));
    let mut future = bytes.clone();
    future[4] = 0xff;
    assert!(matches!(
        ProfileArtifact::from_bytes(&future),
        Err(AlcpError::UnsupportedVersion { .. })
    ));
    let mut flagged = bytes.clone();
    flagged[7] |= 0x40;
    assert!(matches!(
        ProfileArtifact::from_bytes(&flagged),
        Err(AlcpError::UnknownFlags(_))
    ));
    let mut trailing = bytes;
    trailing.push(0);
    assert!(matches!(
        ProfileArtifact::from_bytes(&trailing),
        Err(AlcpError::Malformed("trailing bytes after last section"))
    ));
}

/// The decoder rejects out-of-order tables rather than silently accepting
/// a second byte representation of the same profile.
#[test]
fn non_canonical_orderings_are_rejected() {
    // Hand-assemble a header + profile whose two constructs arrive with a
    // zero head delta (i.e. not strictly ascending).
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"ALCP");
    bytes.extend_from_slice(&alcp::ALCP_VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u16.to_le_bytes());
    bytes.extend_from_slice(&[0, 0, 0, 0, 0, 0]); // six zero counters
    bytes.push(2); // two constructs
    bytes.extend_from_slice(&[5, 0, 1, 1, 0, 0]); // head 5, kind 0, ttotal 1, inst 1, no edges/nesting
    bytes.extend_from_slice(&[0, 0, 1, 1, 0, 0]); // head delta 0 -> malformed
    assert!(matches!(
        ProfileArtifact::from_bytes(&bytes),
        Err(AlcpError::Malformed(
            "construct heads not strictly ascending"
        ))
    ));
}

/// `(kind tag, edge head, edge tail, min_tdep, count)`
type EdgeTuple = (u8, u32, u32, u64, u64);
/// `(head, ttotal, inst, edges, nested-in counts)`
type ConstructTuple = (u32, u64, u64, Vec<EdgeTuple>, Vec<(u32, u64)>);

fn build_profile(constructs: Vec<ConstructTuple>, counters: [u64; 6]) -> DepProfile {
    let mut p = DepProfile::new();
    let [steps, dropped, intra, cross, pages, spills] = counters;
    p.total_steps = steps;
    p.dropped_readers = dropped;
    p.intra_thread_deps = intra;
    p.cross_thread_deps = cross;
    p.shadow_stats.pages_allocated = pages;
    p.shadow_stats.read_set_spills = spills;
    for (head, ttotal, inst, edges, nested) in constructs {
        let kind = match head % 3 {
            0 => ConstructKind::Method,
            1 => ConstructKind::Loop,
            _ => ConstructKind::Branch,
        };
        let id = ConstructId::new(Pc(head), kind);
        p.merge_duration(id, ttotal, inst);
        for (k, eh, et, tdep, count) in edges {
            let kind = match k % 3 {
                0 => DepKind::Raw,
                1 => DepKind::War,
                _ => DepKind::Waw,
            };
            p.merge_edge(
                id,
                EdgeKey {
                    kind,
                    head: Pc(eh),
                    tail: Pc(et),
                },
                EdgeStat {
                    min_tdep: tdep,
                    count,
                    cross_count: count / 2,
                    sample_addr: eh.wrapping_mul(7),
                    sample_tids: (k as u32 % 2, 0),
                },
            );
        }
        for (anc, n) in nested {
            p.merge_nested(id, Pc(anc), n);
        }
    }
    p
}

fn arb_profile() -> impl Strategy<Value = DepProfile> {
    let edge = (0u8..3, 0u32..2000, 0u32..2000, 0u64..10_000, 1u64..50);
    let construct = (
        0u32..2000,
        1u64..100_000,
        1u64..50,
        proptest::collection::vec(edge, 0..6),
        proptest::collection::vec((0u32..2000, 1u64..20), 0..3),
    );
    let n = 0u64..1_000_000;
    let counters = (n.clone(), n.clone(), n.clone(), n.clone(), n.clone(), n)
        .prop_map(|(a, b, c, d, e, f)| [a, b, c, d, e, f]);
    (proptest::collection::vec(construct, 0..6), counters)
        .prop_map(|(cs, counters)| build_profile(cs, counters))
}

/// `Option`-of strategy (the vendored shim has no `prop::option::of`):
/// `None` one draw in four, `Some` of the inner strategy otherwise.
fn opt<S: Strategy>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
    (0u8..4, inner).prop_map(|(toss, v)| (toss > 0).then_some(v))
}

fn arb_tasks() -> impl Strategy<Value = TaskTrace> {
    (
        proptest::collection::vec((0u32..2000, 0u64..100, 1u64..50), 0..6),
        proptest::collection::vec((0u64..10_000, 0u32..8), 0..4),
        proptest::collection::vec((0u32..8, 0u32..8), 0..4),
        0u64..1000,
        0u64..100_000,
    )
        .prop_map(|(ts, joins, edges, cross, steps)| {
            // Enter times are strictly increasing with disjoint intervals,
            // matching what task extraction produces.
            let mut clock = 0u64;
            let mut tasks = Vec::new();
            for (head, dur, gap) in ts {
                clock += gap;
                tasks.push(TaskInstance {
                    head: Pc(head),
                    t_enter: clock,
                    t_exit: clock + dur,
                });
                clock += dur;
            }
            TaskTrace {
                tasks,
                main_joins: joins.into_iter().map(|(s, id)| (s, TaskId(id))).collect(),
                task_edges: edges
                    .into_iter()
                    .map(|(a, b)| (TaskId(a), TaskId(b)))
                    .collect(),
                cross_thread_sharing: cross,
                total_steps: steps,
            }
        })
}

proptest! {
    #[test]
    fn arbitrary_artifacts_round_trip_byte_identical(
        profile in arb_profile(),
        source in opt("[ -~]{0,64}"),
        tasks in opt(arb_tasks()),
    ) {
        let mut artifact = ProfileArtifact::new(profile);
        if let Some(s) = source {
            artifact = artifact.with_source(s);
        }
        if let Some(t) = tasks {
            artifact = artifact.with_tasks(t);
        }
        let bytes = artifact.to_bytes();
        let decoded = ProfileArtifact::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(&decoded.profile.shadow_stats, &artifact.profile.shadow_stats);
        prop_assert_eq!(&decoded, &artifact);
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    /// Random mutilation never panics; it either still decodes (the flip
    /// hit a value byte) or yields a typed error.
    #[test]
    fn random_corruption_never_panics(
        profile in arb_profile(),
        flip_at in 0usize..1 << 20,
        flip_bits in 1u8..=255,
    ) {
        let artifact = ProfileArtifact::new(profile).with_source("int main() { return 0; }");
        let mut bytes = artifact.to_bytes();
        let i = flip_at % bytes.len();
        bytes[i] ^= flip_bits;
        let _ = ProfileArtifact::from_bytes(&bytes);
    }
}
