//! Hostile-input robustness: corrupt, truncated and mutated trace files
//! must decode to typed [`TraceError`]s — never panic, never allocate
//! unboundedly.

use alchemist_trace::{decode_batches_par_recover, TraceError, TraceReader, TraceWriter};
use alchemist_vm::{compile_source, ExecConfig, NullSink};
use proptest::prelude::*;

/// A small but realistic trace: several chunks, all event kinds.
fn valid_trace() -> Vec<u8> {
    let src = "int g;
int work(int x) { int i; for (i = 0; i < 9; i++) g += x * i; return g; }
int main() { int i; for (i = 0; i < 12; i++) { if (i % 2 == 0) work(i); } return g; }";
    let module = compile_source(src).expect("compiles");
    let mut w = TraceWriter::new(Vec::new(), Some(src))
        .expect("header")
        .with_chunk_capacity(64);
    let out = alchemist_vm::run(&module, &ExecConfig::default(), &mut w).expect("runs");
    let (bytes, stats) = w.finish(out.steps).expect("finish");
    assert!(stats.chunks >= 3, "test needs a multi-chunk trace");
    bytes
}

/// The same workload recorded under v3 (per-chunk CRC-32).
fn valid_trace_v3() -> Vec<u8> {
    let src = "int g;
int work(int x) { int i; for (i = 0; i < 9; i++) g += x * i; return g; }
int main() { int i; for (i = 0; i < 12; i++) { if (i % 2 == 0) work(i); } return g; }";
    let module = compile_source(src).expect("compiles");
    let mut w = TraceWriter::new_v3(Vec::new(), Some(src))
        .expect("header")
        .with_chunk_capacity(64);
    let out = alchemist_vm::run(&module, &ExecConfig::default(), &mut w).expect("runs");
    let (bytes, stats) = w.finish(out.steps).expect("finish");
    assert!(stats.chunks >= 3, "test needs a multi-chunk trace");
    bytes
}

/// Drains a reader, returning the first error if any.
fn drain(bytes: &[u8]) -> Result<u64, TraceError> {
    let mut reader = TraceReader::new(bytes)?;
    reader.replay_into(&mut NullSink).map(|s| s.events)
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = valid_trace();
    bytes[..4].copy_from_slice(b"GZIP");
    assert!(matches!(drain(&bytes), Err(TraceError::BadMagic(m)) if &m == b"GZIP"));
}

#[test]
fn future_version_is_rejected() {
    let mut bytes = valid_trace();
    bytes[4] = 0xff;
    bytes[5] = 0x7f;
    assert!(matches!(
        drain(&bytes),
        Err(TraceError::UnsupportedVersion {
            found: 0x7fff,
            min_supported: 1,
            max_supported: 3,
            chunk_index: 0,
        })
    ));
}

#[test]
fn hand_built_v4_header_reports_supported_range() {
    // A from-scratch header claiming format version 4 — one past the
    // newest this reader knows. The error must carry the found version,
    // the full supported range and the chunk index (0 = rejected at the
    // header, before any chunk decodes).
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"ALCT");
    bytes.extend_from_slice(&4u16.to_le_bytes());
    bytes.extend_from_slice(&0u16.to_le_bytes());
    let err = drain(&bytes).expect_err("v4 must be rejected");
    match &err {
        TraceError::UnsupportedVersion {
            found,
            min_supported,
            max_supported,
            chunk_index,
        } => {
            assert_eq!(*found, 4);
            assert_eq!(*min_supported, 1);
            assert_eq!(*max_supported, 3);
            assert_eq!(*chunk_index, 0);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("version 4"), "{msg}");
    assert!(msg.contains("1..=3"), "{msg}");
}

#[test]
fn unknown_flag_bits_are_rejected() {
    let mut bytes = valid_trace();
    bytes[6] |= 0x80;
    assert!(matches!(drain(&bytes), Err(TraceError::Malformed(_))));
}

#[test]
fn truncation_inside_the_header_is_typed() {
    let bytes = valid_trace();
    for cut in [0, 2, 4, 5, 7] {
        assert!(
            matches!(drain(&bytes[..cut]), Err(TraceError::Truncated(_))),
            "cut at {cut}"
        );
    }
}

#[test]
fn truncation_mid_chunk_is_typed() {
    let bytes = valid_trace();
    // Cut at several points inside the chunked region (past the header +
    // embedded source, before the footer).
    let len = bytes.len();
    for cut in [len - 1, len - 7, len / 2, len * 3 / 4] {
        let err = drain(&bytes[..cut]).expect_err("truncated trace must error");
        assert!(
            matches!(
                err,
                TraceError::Truncated(_) | TraceError::Malformed(_) | TraceError::BadEventTag(_)
            ),
            "cut at {cut}: unexpected {err:?}"
        );
    }
}

#[test]
fn missing_footer_is_reported() {
    let src = "int main() { return 1; }";
    let module = compile_source(src).expect("compiles");
    let mut w = TraceWriter::new(Vec::new(), None)
        .expect("header")
        .with_chunk_capacity(4);
    let out = alchemist_vm::run(&module, &ExecConfig::default(), &mut w).expect("runs");
    let (full, _) = w.finish(out.steps).expect("finish");
    // Chop the footer off: find how many bytes a footer takes (it is the
    // tail of the stream) by re-encoding without it being possible —
    // instead, truncate progressively until the error flips to Truncated.
    let err = drain(&full[..full.len() - 3]).expect_err("no footer");
    assert!(matches!(
        err,
        TraceError::Truncated(_) | TraceError::Malformed(_)
    ));
}

#[test]
fn giant_declared_chunk_does_not_allocate() {
    // Header with no source, then a chunk declaring a 2^62-byte payload.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"ALCT");
    bytes.extend_from_slice(&1u16.to_le_bytes());
    bytes.extend_from_slice(&0u16.to_le_bytes());
    // payload_len = 2^62 (varint), events = 1, t_first = 0, t_span = 0.
    bytes.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40]);
    bytes.extend_from_slice(&[0x01, 0x00, 0x00]);
    assert!(matches!(drain(&bytes), Err(TraceError::ChunkTooLarge(_))));
}

#[test]
fn event_count_larger_than_payload_is_rejected() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"ALCT");
    bytes.extend_from_slice(&1u16.to_le_bytes());
    bytes.extend_from_slice(&0u16.to_le_bytes());
    // payload_len = 2, events = 100, t_first = 0, t_span = 0, payload.
    bytes.extend_from_slice(&[0x02, 0x64, 0x00, 0x00, 0x28, 0x28]);
    assert!(matches!(drain(&bytes), Err(TraceError::Malformed(_))));
}

#[test]
fn non_utf8_embedded_source_is_rejected() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"ALCT");
    bytes.extend_from_slice(&1u16.to_le_bytes());
    bytes.extend_from_slice(&1u16.to_le_bytes()); // FLAG_SOURCE
    bytes.extend_from_slice(&[0x02, 0xff, 0xfe]); // len 2, invalid UTF-8
    assert!(matches!(
        TraceReader::new(bytes.as_slice()).err(),
        Some(TraceError::CorruptSource(_))
    ));
}

proptest! {
    /// Flipping any single byte must produce either a clean decode or a
    /// typed error — never a panic (the harness would abort the test).
    #[test]
    fn single_byte_flips_never_panic(idx in any::<usize>(), bit in 0u8..8) {
        let mut bytes = valid_trace();
        let i = idx % bytes.len();
        bytes[i] ^= 1 << bit;
        let _ = drain(&bytes);
    }

    /// Truncating at any length must produce either a clean decode of a
    /// prefix or a typed error — never a panic and never an OOM.
    #[test]
    fn arbitrary_truncations_never_panic(cut in any::<usize>()) {
        let bytes = valid_trace();
        let cut = cut % (bytes.len() + 1);
        let _ = drain(&bytes[..cut]);
    }

    /// Random byte-splices (overwrite a short run with noise) decode to a
    /// result, never a panic.
    #[test]
    fn random_splices_never_panic(
        start in any::<usize>(),
        noise in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut bytes = valid_trace();
        let start = start % bytes.len();
        let end = (start + noise.len()).min(bytes.len());
        bytes[start..end].copy_from_slice(&noise[..end - start]);
        let _ = drain(&bytes);
    }

    /// v3: any single-byte flip in a payload is caught by the chunk CRC
    /// (typed error on the strict path), and the salvage path never errors
    /// and never reports the mangled trace as clean.
    #[test]
    fn v3_flips_are_caught_and_salvage_never_panics(idx in any::<usize>(), bit in 0u8..8) {
        let mut bytes = valid_trace_v3();
        let i = idx % bytes.len();
        bytes[i] ^= 1 << bit;
        let _ = drain(&bytes);
        if let Ok(reader) = TraceReader::new(bytes.as_slice()) {
            let (_, summary, report) = decode_batches_par_recover(reader, 2, None);
            prop_assert_eq!(report.events_salvaged, summary.events);
        }
    }

    /// Salvage of any truncation never panics and keeps its own tallies
    /// consistent.
    #[test]
    fn truncation_salvage_is_self_consistent(cut in any::<usize>()) {
        let bytes = valid_trace_v3();
        let cut = cut % (bytes.len() + 1);
        if let Ok(reader) = TraceReader::new(&bytes[..cut]) {
            let (batches, summary, report) = decode_batches_par_recover(reader, 2, None);
            let delivered: u64 = batches.iter().map(|b| b.len() as u64).sum();
            prop_assert_eq!(delivered, summary.events);
            prop_assert_eq!(report.events_salvaged, summary.events);
            prop_assert!(report.is_clean() || cut < bytes.len());
        }
    }
}
