//! Record→replay equivalence over the full workload suite: for every
//! bundled benchmark, a recorded trace replayed into the offline analyses
//! must reproduce the live-instrumented results exactly, and the encoding
//! must stay compact.

use alchemist_core::{profile_events, profile_module, ProfileConfig};
use alchemist_trace::{TraceReader, TraceStats, TraceWriter};
use alchemist_vm::{Event, Module, RecordingSink};
use alchemist_workloads::Scale;

/// Records one workload run into an in-memory trace.
fn record(w: &alchemist_workloads::Workload) -> (Module, Vec<u8>, TraceStats, u64) {
    let module = w.module();
    // Threaded workloads need the v2 tid column; the paper's eight stay
    // on v1 so their byte-level format is untouched.
    let mut writer = if module.uses_threads() {
        TraceWriter::new_v2(Vec::new(), Some(w.source))
    } else {
        TraceWriter::new(Vec::new(), Some(w.source))
    }
    .expect("header");
    let outcome = alchemist_vm::run(&module, &w.exec_config(Scale::Tiny), &mut writer)
        .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
    let (bytes, stats) = writer.finish(outcome.steps).expect("finish");
    (module, bytes, stats, outcome.steps)
}

#[test]
fn replayed_events_equal_live_events_for_every_workload() {
    for w in alchemist_workloads::all() {
        let (module, bytes, stats, _) = record(w);
        let mut live = RecordingSink::default();
        alchemist_vm::run(&module, &w.exec_config(Scale::Tiny), &mut live).expect("runs");
        let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
        assert_eq!(reader.source(), Some(w.source), "{}", w.name);
        let mut replayed = RecordingSink::default();
        let summary = reader.replay_into(&mut replayed).expect("replay");
        assert_eq!(summary.events, stats.events, "{}", w.name);
        assert_eq!(
            replayed.events.len(),
            live.events.len(),
            "{}: event count",
            w.name
        );
        assert_eq!(replayed, live, "{}: event streams differ", w.name);
    }
}

#[test]
fn replayed_profile_equals_live_profile_for_every_workload() {
    for w in alchemist_workloads::all() {
        let (module, bytes, _, _) = record(w);
        // Live: instrument the interpreter directly.
        let (live_profile, exec, _, _) = profile_module(
            &module,
            &w.exec_config(Scale::Tiny),
            ProfileConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
        // Offline: decode the trace and drive the same profiler.
        let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
        let events: Vec<Event> = reader.by_ref().map(|e| e.expect("decode")).collect();
        let total_steps = reader.total_steps().expect("footer");
        assert_eq!(total_steps, exec.steps, "{}", w.name);
        let (offline_profile, _, _) = profile_events(
            &module,
            events.iter().copied(),
            total_steps,
            ProfileConfig::default(),
        );
        assert_eq!(
            offline_profile, live_profile,
            "{}: offline DepProfile diverges from live run",
            w.name
        );
    }
}

#[test]
fn replayed_task_extraction_equals_live_for_parallel_workloads() {
    use alchemist_parsim::{extract_tasks, extract_tasks_from_events, ExtractConfig};
    for w in alchemist_workloads::all() {
        let Some(spec) = &w.parallel else { continue };
        let (module, bytes, _, _) = record(w);
        let mut cfg = ExtractConfig::default();
        for head in w.resolve_targets(&module) {
            cfg = cfg.mark(head);
        }
        for v in spec.privatized {
            cfg = cfg.privatize(v);
        }
        let live = extract_tasks(&module, &w.exec_config(Scale::Tiny), cfg.clone())
            .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
        let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
        let events: Vec<Event> = reader.by_ref().map(|e| e.expect("decode")).collect();
        let offline = extract_tasks_from_events(
            &module,
            cfg,
            events.iter().copied(),
            reader.total_steps().expect("footer"),
        );
        assert_eq!(live, offline, "{}: task traces differ", w.name);
    }
}

#[test]
fn gzip_trace_averages_at_most_four_bytes_per_event() {
    let w = alchemist_workloads::by_name("gzip-1.3.5").expect("workload");
    let (_, _, stats, _) = record(w);
    assert!(
        stats.bytes_per_event() <= 4.0,
        "gzip trace too fat: {:.3} bytes/event over {} events",
        stats.bytes_per_event(),
        stats.events
    );
}

#[test]
fn windowed_replay_matches_filtered_live_events() {
    let w = alchemist_workloads::by_name("gzip-1.3.5").expect("workload");
    let (module, bytes, _, total_steps) = record(w);
    let mut live = RecordingSink::default();
    alchemist_vm::run(&module, &w.exec_config(Scale::Tiny), &mut live).expect("runs");
    // A window in the middle third of the run.
    let (lo, hi) = (total_steps / 3, 2 * total_steps / 3);
    let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
    let mut windowed = RecordingSink::default();
    let delivered = reader.replay_window(lo, hi, &mut windowed).expect("window");
    let expect: Vec<Event> = live
        .events
        .iter()
        .copied()
        .filter(|e| (lo..=hi).contains(&e.time()))
        .collect();
    assert!(!expect.is_empty(), "window covers events");
    assert_eq!(delivered as usize, expect.len());
    assert_eq!(windowed.events, expect);
}
