//! Multi-input aggregation at workload level: the paper's "gathering and
//! analyzing profile runs" workflow applied to the benchmark suite.

use alchemist::core::aggregate::{merge_profiles, profile_many};
use alchemist::core::stats::DistanceHistogram;
use alchemist::prelude::*;
use alchemist::workloads::{self, Scale};

#[test]
fn gzip_profiles_aggregate_across_inputs() {
    let w = workloads::by_name("gzip-1.3.5").unwrap();
    let module = w.module();
    let inputs = vec![
        w.input(Scale::Tiny),
        // A second, differently-seeded input of the same shape.
        alchemist::workloads::inputs::literal_stream(600, 999),
    ];
    let (agg, runs) = profile_many(&module, &inputs, ProfileConfig::default()).unwrap();
    assert_eq!(runs.len(), 2);
    assert_eq!(agg.total_steps, runs[0].total_steps + runs[1].total_steps);

    let flush = module.func_by_name("flush_block").unwrap().1.entry;
    let agg_flush = agg.construct(flush).unwrap();
    let run_insts: u64 = runs.iter().map(|r| r.construct(flush).unwrap().inst).sum();
    assert_eq!(agg_flush.inst, run_insts);
    // The aggregate's minimum distance per edge is the min across runs.
    for (key, stat) in &agg_flush.edges {
        let best = runs
            .iter()
            .filter_map(|r| r.construct(flush))
            .filter_map(|c| c.edges.get(key))
            .map(|s| s.min_tdep)
            .min()
            .expect("edge came from some run");
        assert_eq!(stat.min_tdep, best, "{key:?}");
    }
}

#[test]
fn merge_is_associative_enough_for_reports() {
    // Merging A into B vs B into A must produce identical reports
    // (commutativity of the union/min semantics).
    let w = workloads::by_name("aes").unwrap();
    let module = w.module();
    let (p1, ..) = profile_module(
        &module,
        &ExecConfig::with_input(w.input(Scale::Tiny)),
        ProfileConfig::default(),
    )
    .unwrap();
    let (p2, ..) = profile_module(
        &module,
        &ExecConfig::with_input(alchemist::workloads::inputs::byte_stream(512, 4242)),
        ProfileConfig::default(),
    )
    .unwrap();
    let mut ab = p1.clone();
    merge_profiles(&mut ab, &p2);
    let mut ba = p2.clone();
    merge_profiles(&mut ba, &p1);
    let ra = ProfileReport::new(&ab, &module).render(15);
    let rb = ProfileReport::new(&ba, &module).render(15);
    assert_eq!(ra, rb);
}

#[test]
fn distance_histograms_show_the_two_cluster_pattern() {
    // Fig. 2's structure: flush_block has a cluster of short (violating)
    // distances and a cluster of long cross-flush distances.
    let w = workloads::by_name("gzip-1.3.5").unwrap();
    let (module, profile, _) = w.profile(Scale::Small);
    let report = ProfileReport::new(&profile, &module);
    let flush = report.find("Method flush_block").unwrap();
    let h = DistanceHistogram::of(flush, DepKind::Raw);
    assert!(h.violating() > 0, "short cluster present: {h}");
    assert!(h.near + h.far > 0, "long cluster present: {h}");
    assert_eq!(h.violating(), flush.violating_raw);
}
