//! Property tests validating the online profiler against the brute-force
//! oracle (DESIGN.md section 7):
//!
//! * with a generous pool and reader cap, the online profiler must produce
//!   exactly the oracle's profile (durations, instance counts, every edge's
//!   min distance and exercise count);
//! * with a tiny pool, the online profile must be a *subset*: no invented
//!   edges, no distances smaller than the oracle's, durations untouched.

mod common;

use alchemist_core::oracle::oracle_profile;
use alchemist_core::{AlchemistProfiler, DepProfile, ProfileConfig};
use alchemist_vm::{compile_source, ExecConfig, Module, RecordingSink};
use common::{gen_program, GenConfig};
use proptest::prelude::*;

fn run_both(src: &str, config: ProfileConfig) -> Option<(Module, DepProfile, DepProfile)> {
    let module = compile_source(src).ok()?;
    let exec_cfg = ExecConfig {
        max_steps: 2_000_000,
        ..ExecConfig::default()
    };

    let mut rec = RecordingSink::default();
    let outcome = alchemist_vm::run(&module, &exec_cfg, &mut rec).ok()?;
    let oracle = oracle_profile(&module, &rec.events, outcome.steps);

    let mut prof = AlchemistProfiler::new(&module, config);
    let outcome2 = alchemist_vm::run(&module, &exec_cfg, &mut prof).ok()?;
    assert_eq!(outcome.steps, outcome2.steps, "determinism");
    let online = prof.into_profile(outcome2.steps);
    Some((module, oracle, online))
}

fn assert_profiles_equal(oracle: &DepProfile, online: &DepProfile) {
    assert_eq!(oracle.total_steps, online.total_steps);
    assert_eq!(oracle.len(), online.len(), "same construct set");
    for oc in oracle.constructs() {
        let pc = online
            .construct(oc.id.head)
            .unwrap_or_else(|| panic!("online missing construct {:?}", oc.id));
        assert_eq!(oc.id.kind, pc.id.kind, "{:?}", oc.id);
        assert_eq!(oc.inst, pc.inst, "inst of {:?}", oc.id);
        assert_eq!(oc.ttotal, pc.ttotal, "ttotal of {:?}", oc.id);
        assert_eq!(
            oc.edges.len(),
            pc.edges.len(),
            "edge count of {:?}: oracle {:?} vs online {:?}",
            oc.id,
            oc.edges.keys().collect::<Vec<_>>(),
            pc.edges.keys().collect::<Vec<_>>()
        );
        for (key, ostat) in &oc.edges {
            let pstat = pc
                .edges
                .get(key)
                .unwrap_or_else(|| panic!("online missing edge {key:?} of {:?}", oc.id));
            assert_eq!(ostat.min_tdep, pstat.min_tdep, "min_tdep of {key:?}");
            assert_eq!(ostat.count, pstat.count, "count of {key:?}");
        }
        assert_eq!(oc.nested_in, pc.nested_in, "nesting stats of {:?}", oc.id);
    }
}

fn assert_online_subset(oracle: &DepProfile, online: &DepProfile) {
    // Durations and instances never depend on the pool.
    for oc in oracle.constructs() {
        let pc = online
            .construct(oc.id.head)
            .expect("construct set identical");
        assert_eq!(oc.inst, pc.inst);
        assert_eq!(oc.ttotal, pc.ttotal);
    }
    for pc in online.constructs() {
        let oc = oracle
            .construct(pc.id.head)
            .expect("no invented constructs");
        for (key, pstat) in &pc.edges {
            let ostat = oc
                .edges
                .get(key)
                .unwrap_or_else(|| panic!("online invented edge {key:?}"));
            assert!(
                pstat.min_tdep >= ostat.min_tdep,
                "online min_tdep {} below oracle {} for {key:?}",
                pstat.min_tdep,
                ostat.min_tdep
            );
            assert!(pstat.count <= ostat.count, "count inflated for {key:?}");
        }
    }
}

fn big_pool() -> ProfileConfig {
    ProfileConfig {
        pool_capacity: 1_000_000,
        reader_cap: 4096,
        ..ProfileConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn online_profiler_matches_oracle_exactly(seed in any::<u64>()) {
        let src = gen_program(seed, GenConfig::default());
        if let Some((_m, oracle, online)) = run_both(&src, big_pool()) {
            assert_profiles_equal(&oracle, &online);
        }
    }

    #[test]
    fn online_matches_oracle_on_deep_programs(seed in any::<u64>()) {
        let src = gen_program(
            seed,
            GenConfig { helpers: 3, max_depth: 4, block_len: 3 },
        );
        if let Some((_m, oracle, online)) = run_both(&src, big_pool()) {
            assert_profiles_equal(&oracle, &online);
        }
    }

    #[test]
    fn tiny_pool_yields_sound_subset(seed in any::<u64>()) {
        let src = gen_program(seed, GenConfig::default());
        let config = ProfileConfig {
            pool_capacity: 4,
            reader_cap: 4096,
            ..ProfileConfig::default()
        };
        if let Some((_m, oracle, online)) = run_both(&src, config) {
            assert_online_subset(&oracle, &online);
        }
    }
}

/// The generator must produce compiling, terminating programs virtually
/// always — otherwise the properties above are vacuous.
#[test]
fn generator_yield_is_high() {
    let mut ok = 0;
    let total = 200;
    for seed in 0..total {
        let src = gen_program(seed as u64 * 7 + 1, GenConfig::default());
        let module = match compile_source(&src) {
            Ok(m) => m,
            Err(e) => panic!("seed {seed}: generated program fails to compile: {e}\n{src}"),
        };
        let cfg = ExecConfig {
            max_steps: 2_000_000,
            ..ExecConfig::default()
        };
        if alchemist_vm::run(&module, &cfg, &mut alchemist_vm::NullSink).is_ok() {
            ok += 1;
        }
    }
    assert!(
        ok == total,
        "only {ok}/{total} generated programs ran to completion"
    );
}

/// A fixed regression corpus: shapes that exercised bugs during
/// development or are structurally nasty (early returns from loops,
/// breaks out of nested loops, conditionals sharing join blocks).
#[test]
fn handwritten_corpus_matches_oracle() {
    let corpus: &[&str] = &[
        // Early return from a nested loop.
        "int g;
         int find(int needle) {
             int i; int j;
             for (i = 0; i < 5; i++)
                 for (j = 0; j < 5; j++) {
                     g++;
                     if (i * 5 + j == needle) return i;
                 }
             return -1;
         }
         int main() { return find(7) + find(23) + g; }",
        // break + continue in the same loop.
        "int acc;
         int main() {
             int i;
             for (i = 0; i < 20; i++) {
                 if (i % 3 == 0) continue;
                 if (i > 11) break;
                 acc += i;
             }
             return acc;
         }",
        // Conditionals whose joins coincide (if at end of loop body).
        "int x;
         int main() {
             int i;
             for (i = 0; i < 6; i++) {
                 if (i & 1) { x += 1; if (x > 3) x -= 2; }
             }
             return x;
         }",
        // Recursion with globals.
        "int depth;
         int down(int n) {
             depth = depth + 1;
             if (n <= 0) return 0;
             return down(n - 1) + 1;
         }
         int main() { down(6); return down(3) + depth; }",
        // do-while with shared state.
        "int s;
         int main() {
             int i = 0;
             do { s += i; i++; } while (i < 7);
             do { s ^= i; i--; } while (i > 0);
             return s;
         }",
        // Short-circuit predicates in a loop condition.
        "int n; int hits;
         int main() {
             int i = 0;
             while (i < 30 && n < 10) {
                 if (i % 4 == 0 || i % 6 == 0) { n++; hits += i; }
                 i++;
             }
             return hits;
         }",
        // while(1) with breaks (no loop predicate at the header).
        "int g;
         int main() {
             int i = 0;
             while (1) {
                 if (i > 8) break;
                 g += i;
                 if (g > 30) break;
                 i++;
             }
             return g;
         }",
    ];
    for (i, src) in corpus.iter().enumerate() {
        let (_m, oracle, online) =
            run_both(src, big_pool()).unwrap_or_else(|| panic!("corpus #{i} failed"));
        assert_profiles_equal(&oracle, &online);
    }
}
