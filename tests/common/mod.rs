//! Shared test support: a deterministic random mini-C program generator.
//!
//! Programs are built from a seed so property tests shrink on a single
//! `u64`. Every generated program terminates: loops always use bounded
//! counter patterns, and call graphs are acyclic (helpers may only call
//! helpers with smaller indices).

use alchemist_workloads::Xorshift;
use std::fmt::Write as _;

/// Tunable size limits for generated programs.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of helper functions (0..=3).
    pub helpers: usize,
    /// Maximum statement-nesting depth.
    pub max_depth: usize,
    /// Statements per block (1..).
    pub block_len: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            helpers: 2,
            max_depth: 3,
            block_len: 4,
        }
    }
}

/// Generates a random, terminating mini-C program from `seed`.
pub fn gen_program(seed: u64, config: GenConfig) -> String {
    let mut g = Gen {
        rng: Xorshift::new(seed),
        config,
        var_counter: 0,
    };
    g.program()
}

struct Gen {
    rng: Xorshift,
    config: GenConfig,
    var_counter: usize,
}

impl Gen {
    fn pick(&mut self, n: usize) -> usize {
        self.rng.below(n as u64) as usize
    }

    fn program(&mut self) -> String {
        let mut out = String::new();
        out.push_str("int g0; int g1; int g2; int g3 = 5;\n");
        out.push_str("int arr0[8]; int arr1[16];\n");
        // Fixed helpers available to every generated program: a bounded
        // recursion and an array-parameter writer (exercises barriers and
        // array descriptors in the oracle comparison).
        out.push_str("int rec(int n) { g1 ^= n; if (n <= 0) return g0; return rec(n - 1) + 1; }\n");
        out.push_str(
            "void fill(int a[], int n) { int i; for (i = 0; i < n; i++) a[i] = g2 + i; }\n",
        );
        let helpers = self.config.helpers;
        for f in 0..helpers {
            let body = self.block(1, f);
            let _ = writeln!(
                out,
                "int f{f}(int p) {{\n{body}    return p + g{};\n}}",
                f % 4
            );
        }
        let body = self.block(1, helpers);
        let _ = writeln!(out, "int main() {{\n{body}    return g0 + g1;\n}}");
        out
    }

    /// A block of statements at `depth`; `callable` = number of helpers
    /// this scope may call.
    fn block(&mut self, depth: usize, callable: usize) -> String {
        let mut out = String::new();
        let n = 1 + self.pick(self.config.block_len);
        for _ in 0..n {
            out.push_str(&self.stmt(depth, callable));
        }
        out
    }

    fn indent(depth: usize) -> String {
        "    ".repeat(depth)
    }

    fn stmt(&mut self, depth: usize, callable: usize) -> String {
        let ind = Self::indent(depth);
        let deep = depth >= self.config.max_depth;
        let choice = if deep { self.pick(5) } else { self.pick(13) };
        match choice {
            // Scalar global update.
            0 | 1 => {
                let dst = self.pick(4);
                let e = self.expr(callable);
                format!("{ind}g{dst} = {e};\n")
            }
            // Compound update.
            2 => {
                let dst = self.pick(4);
                let op = ["+=", "-=", "^=", "|="][self.pick(4)];
                let e = self.expr(callable);
                format!("{ind}g{dst} {op} {e};\n")
            }
            // Array write (masked index keeps it in bounds).
            3 => {
                let (arr, mask) = if self.pick(2) == 0 { (0, 7) } else { (1, 15) };
                let idx = self.expr(callable);
                let e = self.expr(callable);
                format!("{ind}arr{arr}[({idx}) & {mask}] = {e};\n")
            }
            // Call for effect (helpers with smaller index only).
            4 => {
                if callable == 0 {
                    let e = self.expr(callable);
                    format!("{ind}g0 ^= {e};\n")
                } else {
                    let f = self.pick(callable);
                    let e = self.expr(f);
                    format!("{ind}f{f}({e});\n")
                }
            }
            // if / if-else.
            5 | 6 => {
                let c = self.expr(callable);
                let then = self.block(depth + 1, callable);
                if self.pick(2) == 0 {
                    format!("{ind}if (({c}) & 1) {{\n{then}{ind}}}\n")
                } else {
                    let els = self.block(depth + 1, callable);
                    format!("{ind}if (({c}) & 1) {{\n{then}{ind}}} else {{\n{els}{ind}}}\n")
                }
            }
            // Bounded for loop, possibly with break/continue.
            7 | 8 => {
                let v = self.fresh_var();
                let bound = 2 + self.pick(5);
                let body = self.block(depth + 1, callable);
                let extra = match self.pick(4) {
                    0 => format!(
                        "{}if ({v} == {}) continue;\n",
                        Self::indent(depth + 1),
                        self.pick(bound)
                    ),
                    1 => format!(
                        "{}if (g{} < {v}) break;\n",
                        Self::indent(depth + 1),
                        self.pick(4)
                    ),
                    _ => String::new(),
                };
                format!("{ind}for (int {v} = 0; {v} < {bound}; {v}++) {{\n{extra}{body}{ind}}}\n")
            }
            // Bounded while loop.
            9 => {
                let v = self.fresh_var();
                let bound = 2 + self.pick(4);
                let body = self.block(depth + 1, callable);
                format!(
                    "{ind}int {v} = 0;\n{ind}while ({v} < {bound}) {{\n{body}{}{v}++;\n{ind}}}\n",
                    Self::indent(depth + 1)
                )
            }
            // Bounded do-while loop.
            10 => {
                let v = self.fresh_var();
                let bound = 1 + self.pick(4);
                let body = self.block(depth + 1, callable);
                format!(
                    "{ind}int {v} = 0;\n{ind}do {{\n{body}{}{v}++;\n{ind}}} while ({v} < {bound});\n",
                    Self::indent(depth + 1)
                )
            }
            // Bounded recursion via the fixed helper.
            11 => {
                let dst = self.pick(4);
                format!("{ind}g{dst} ^= rec({});\n", self.pick(6))
            }
            // Array fill through an array-reference parameter.
            _ => {
                let (arr, len) = if self.pick(2) == 0 { (0, 8) } else { (1, 16) };
                let n = 1 + self.pick(len - 1);
                format!("{ind}fill(arr{arr}, {n});\n")
            }
        }
    }

    fn fresh_var(&mut self) -> String {
        self.var_counter += 1;
        format!("v{}", self.var_counter)
    }

    fn expr(&mut self, callable: usize) -> String {
        match self.pick(8) {
            0 => format!("{}", self.pick(64)),
            1 | 2 => format!("g{}", self.pick(4)),
            3 => format!("arr0[{} & 7]", self.pick(16)),
            4 => format!("arr1[{} & 15]", self.pick(32)),
            5 => {
                let op = ["+", "-", "*", "^", "&", "|"][self.pick(6)];
                let a = format!("g{}", self.pick(4));
                let b = self.pick(32);
                format!("({a} {op} {b})")
            }
            6 if callable > 0 => {
                let f = self.pick(callable);
                format!("f{f}({})", self.pick(16))
            }
            _ => {
                let a = self.pick(4);
                let b = self.pick(4);
                format!("(g{a} > g{b} ? g{a} : g{b})")
            }
        }
    }
}
