//! Machine-checked versions of the paper's worked examples:
//!
//! * Fig. 4 (a)/(b)/(c) — execution-indexing trees for procedure nesting,
//!   nested conditionals and loop iterations;
//! * Fig. 1 — the `Tdep - Tdur` relation that decides spawnability;
//! * section III-B's "Inadequacy of Context Sensitivity" F/A/B example —
//!   the same static dependence attributed to different constructs
//!   depending on the dynamic nesting it crosses.

use alchemist::prelude::*;
use alchemist_core::profile_module;

fn profile(src: &str) -> (alchemist_vm::Module, alchemist_core::DepProfile) {
    let module = compile_source(src).expect("example compiles");
    let (profile, ..) = profile_module(&module, &ExecConfig::default(), ProfileConfig::default())
        .expect("example runs");
    (module, profile)
}

/// Fig. 4(a): `A` calls `B`; the index of a point in `B` is `[A, B]`.
#[test]
fn fig4a_procedure_nesting() {
    let (module, profile) = profile(
        "int s;
         void b() { s = 2; }
         void a() { s = 1; b(); }
         int main() { a(); return s; }",
    );
    let a = profile
        .construct(module.func_by_name("a").unwrap().1.entry)
        .unwrap();
    let b = profile
        .construct(module.func_by_name("b").unwrap().1.entry)
        .unwrap();
    assert_eq!(a.inst, 1);
    assert_eq!(b.inst, 1);
    // B nests inside A: its instances are recorded under A.
    assert_eq!(b.nested_in[&a.id.head], 1);
    // And both nest inside main.
    let main_head = module.funcs[module.main.0 as usize].entry;
    assert_eq!(a.nested_in[&main_head], 1);
    assert_eq!(b.nested_in[&main_head], 1);
}

/// Fig. 4(b): `if (..) { s3; if (..) s4; }` — construct 4 nests in
/// construct 2, and statement 2 belongs to the procedure, not to itself.
#[test]
fn fig4b_nested_conditionals() {
    let (_module, profile) = profile(
        "int x;
         int main() {
             if (x == 0) {
                 x = 3;
                 if (x > 1) x = 4;
             }
             return x;
         }",
    );
    let branches: Vec<_> = profile
        .constructs()
        .filter(|c| c.id.kind == ConstructKind::Branch)
        .collect();
    assert_eq!(branches.len(), 2, "two if constructs profiled");
    let outer = branches.iter().max_by_key(|c| c.ttotal).unwrap();
    let inner = branches.iter().min_by_key(|c| c.ttotal).unwrap();
    assert_eq!(
        inner.nested_in[&outer.id.head], 1,
        "inner if is indexed under the outer if"
    );
    assert!(outer.ttotal > inner.ttotal);
}

/// Fig. 4(c): loop iterations are sibling instances; a nested loop's
/// iterations nest under the current outer iteration. The trace
/// `2 3 4 5 4 5 4 2` yields two instances of loop 4's iterations inside
/// the first instance of loop 2.
#[test]
fn fig4c_loop_iterations_as_instances() {
    let (_module, profile) = profile(
        "int s;
         int main() {
             int i;
             int j;
             for (i = 0; i < 3; i++) {
                 s += 1;
                 for (j = 0; j < 2; j++) {
                     s += 10;
                 }
             }
             return s;
         }",
    );
    let loops: Vec<_> = profile
        .constructs()
        .filter(|c| c.id.kind == ConstructKind::Loop)
        .collect();
    assert_eq!(loops.len(), 2);
    let outer = loops.iter().max_by_key(|c| c.ttotal).unwrap();
    let inner = loops.iter().min_by_key(|c| c.ttotal).unwrap();
    // 3 productive iterations + the final test instance.
    assert_eq!(outer.inst, 4);
    // 3 * (2 productive + final test) = 9.
    assert_eq!(inner.inst, 9);
    // Every inner iteration is indexed under some outer iteration.
    assert_eq!(inner.nested_in[&outer.id.head], 9);
}

/// Fig. 1: a construct is spawnable iff every RAW distance exceeds its
/// duration — the parallel-run distance is `Tdep - Tdur`.
#[test]
fn fig1_tdep_vs_tdur_decides_spawnability() {
    // `far` writes a value read long after it returns (Tdep >> Tdur);
    // `near` writes a value read immediately (Tdep small).
    let (module, profile) = profile(
        "int a; int b; int sink;
         void far() { a = 7; }
         void near_() { b = 9; }
         int main() {
             int i;
             far();
             for (i = 0; i < 200; i++) sink += i;  // long continuation
             sink += a;                            // far's consumer
             near_();
             sink += b;                            // near's consumer
             return sink;
         }",
    );
    let far = profile
        .construct(module.func_by_name("far").unwrap().1.entry)
        .unwrap();
    let near = profile
        .construct(module.func_by_name("near_").unwrap().1.entry)
        .unwrap();
    let far_raw = far.edges.values().map(|s| s.min_tdep).min().unwrap();
    let near_raw = near.edges.values().map(|s| s.min_tdep).min().unwrap();
    assert!(
        far_raw > far.tdur_mean(),
        "far: Tdep {} must exceed Tdur {} -> spawnable",
        far_raw,
        far.tdur_mean()
    );
    assert!(
        near_raw <= near.tdur_mean(),
        "near: Tdep {} within Tdur {} -> violating",
        near_raw,
        near.tdur_mean()
    );
    assert_eq!(far.violating_count(DepKind::Raw), 0);
    assert!(near.violating_count(DepKind::Raw) > 0);
}

/// Section III-B: four dependences between A() and B() at four nesting
/// distances; calling context is identical, only the execution index
/// separates them. Each cell's dependence must be attributed to exactly
/// the constructs whose boundaries it crosses.
#[test]
fn context_sensitivity_example() {
    let (module, profile) = profile(
        "int cell_same_j;
         int cell_cross_j;
         int cell_cross_i;
         int cell_cross_f;
         void a(int i, int j) {
             cell_same_j = i + j;
             if (j == 0) cell_cross_j = i;
             if (i == 0 && j == 0) cell_cross_i = 1;
             cell_cross_f = cell_cross_f + 1;
         }
         void b(int i, int j) {
             int x = cell_same_j;
             int y = j > 0 ? cell_cross_j : 0;
             int z = i > 0 ? cell_cross_i : 0;
             cell_same_j = x + y + z;
         }
         void f() {
             int i;
             int j;
             for (i = 0; i < 3; i++)
                 for (j = 0; j < 3; j++) {
                     a(i, j);
                     b(i, j);
                 }
         }
         int main() { f(); f(); return cell_cross_f; }",
    );
    let addr_of = |name: &str| module.global_by_name(name).unwrap().offset;
    let raw_vars = |head: alchemist_vm::Pc| -> Vec<u32> {
        let c = profile.construct(head).unwrap();
        let mut addrs: Vec<u32> = c
            .edges
            .iter()
            .filter(|(k, _)| k.kind == DepKind::Raw)
            .map(|(_, s)| s.sample_addr)
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs
    };

    // Identify the i and j loops inside f.
    let f_info = module.func_by_name("f").unwrap().1;
    let loops: Vec<_> = (f_info.entry.0..f_info.end.0)
        .map(alchemist_vm::Pc)
        .filter(|&pc| module.analysis.predicate_kind(pc) == Some(alchemist_vm::PredKind::Loop))
        .collect();
    assert_eq!(loops.len(), 2);
    // The i loop's predicate appears first in code order (outer for).
    let (i_loop, j_loop) = (loops[0], loops[1]);

    // The j loop (iteration construct) carries cross_j, cross_i and
    // cross_f (everything that crosses a j-iteration boundary) but NOT the
    // same-iteration cell.
    let j_vars = raw_vars(j_loop);
    assert!(
        !j_vars.contains(&addr_of("cell_same_j")),
        "intra-iteration dep excluded"
    );
    assert!(j_vars.contains(&addr_of("cell_cross_j")));
    // The i loop carries cross_i and cross_f, but not cross_j (it resolves
    // within one i iteration).
    let i_vars = raw_vars(i_loop);
    assert!(i_vars.contains(&addr_of("cell_cross_i")));
    assert!(!i_vars.contains(&addr_of("cell_cross_j")), "{i_vars:?}");
    // Method f carries only the cross-call cell.
    let f_vars = raw_vars(f_info.entry);
    assert_eq!(f_vars, vec![addr_of("cell_cross_f")]);
}

/// The profile distinguishes the two call sites' dependences of gzip's
/// flush_block (paper section II): the trailing-bits edge only occurs for
/// the final out-of-loop call, so in-loop calls remain spawnable.
#[test]
fn gzip_call_site_distinction() {
    let w = alchemist::workloads::by_name("gzip-1.3.5").unwrap();
    let (module, profile, _) = w.profile(Scale::Small);
    let report = ProfileReport::new(&profile, &module);
    let fb = report.find("Method flush_block").unwrap();
    assert!(fb.inst >= 2, "both call sites executed");
    // There are RAW edges that violate (the trailing write against the
    // checksum) and RAW edges that do not (cross-flush state), as in
    // Fig. 2's boxed-vs-unboxed split.
    let violating = fb.edges_of(DepKind::Raw).filter(|e| e.violating).count();
    let fine = fb.edges_of(DepKind::Raw).filter(|e| !e.violating).count();
    assert!(violating > 0, "some edge hinders the final call");
    assert!(fine > 0, "some edges leave the in-loop calls spawnable");
}
