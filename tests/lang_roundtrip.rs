//! Round-trip properties over realistic generated programs: printing a
//! parsed program and re-compiling it must preserve both the syntax tree
//! (modulo spans) and — more importantly — the program's observable
//! behaviour and its dependence profile.

mod common;

use alchemist_core::{profile_module, ProfileConfig};
use alchemist_lang::{parse_program, print_program};
use alchemist_vm::{compile_source, ExecConfig, NullSink};
use common::{gen_program, GenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_is_idempotent(seed in any::<u64>()) {
        let src = gen_program(seed, GenConfig::default());
        let p1 = parse_program(&src).expect("generated source parses");
        let printed1 = print_program(&p1);
        let p2 = parse_program(&printed1)
            .unwrap_or_else(|e| panic!("printed source fails to parse: {e}\n{printed1}"));
        let printed2 = print_program(&p2);
        prop_assert_eq!(printed1, printed2, "printing is not a fixed point");
    }

    #[test]
    fn printed_program_behaves_identically(seed in any::<u64>()) {
        let src = gen_program(seed, GenConfig::default());
        let printed = print_program(&parse_program(&src).expect("parses"));

        let m1 = compile_source(&src).expect("original compiles");
        let m2 = compile_source(&printed).expect("printed compiles");
        let cfg = ExecConfig { max_steps: 2_000_000, ..ExecConfig::default() };
        let r1 = alchemist_vm::run(&m1, &cfg, &mut NullSink);
        let r2 = alchemist_vm::run(&m2, &cfg, &mut NullSink);
        match (r1, r2) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.exit_value, b.exit_value);
                prop_assert_eq!(a.output, b.output);
                prop_assert_eq!(a.steps, b.steps, "instruction streams differ");
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.kind, b.kind),
            (a, b) => prop_assert!(false, "divergent outcomes: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn printed_program_profiles_identically(seed in any::<u64>()) {
        let src = gen_program(seed, GenConfig { helpers: 1, max_depth: 2, block_len: 3 });
        let printed = print_program(&parse_program(&src).expect("parses"));
        let m1 = compile_source(&src).expect("compiles");
        let m2 = compile_source(&printed).expect("compiles");
        let cfg = ExecConfig { max_steps: 2_000_000, ..ExecConfig::default() };
        let p1 = profile_module(&m1, &cfg, ProfileConfig::default());
        let p2 = profile_module(&m2, &cfg, ProfileConfig::default());
        if let (Ok((p1, ..)), Ok((p2, ..))) = (p1, p2) {
            prop_assert_eq!(p1.total_steps, p2.total_steps);
            prop_assert_eq!(p1.len(), p2.len());
            // Edge multisets agree construct by construct (pcs may shift
            // with formatting, so compare counts per kind).
            let count = |p: &alchemist_core::DepProfile| {
                let mut v: Vec<(u64, usize)> = p
                    .constructs()
                    .map(|c| (c.inst, c.edges.len()))
                    .collect();
                v.sort_unstable();
                v
            };
            prop_assert_eq!(count(&p1), count(&p2));
        }
    }
}
