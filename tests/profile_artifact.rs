//! The profile-artifact headline invariant, pinned for every bundled
//! workload:
//!
//! * live instrumentation == sequential replay == `--jobs 4` sharded
//!   replay, and a `.alcp` artifact of any of them encodes to the same
//!   bytes;
//! * a `profile merge` of per-run artifacts equals — profile **and**
//!   bytes — the artifact of the directly aggregated run;
//! * artifacts round-trip byte-identically through save -> load -> save.
//!
//! A property test extends the merge claim to arbitrary event streams: an
//! input stream split at arbitrary run boundaries, profiled per segment,
//! merges to the aggregated profile under any rotation and either fold
//! direction (the [`PartialProfile`] order-independence guarantee).

use alchemist_core::{
    profile_events, profile_events_par, profile_many, profile_module, PartialProfile, ProfileConfig,
};
use alchemist_trace::{ProfileArtifact, TraceReader, TraceWriter};
use alchemist_vm::{compile_source, Event, ExecConfig};
use alchemist_workloads::Scale;
use proptest::prelude::*;

/// Records one workload run into an in-memory `.alct` trace.
fn record(w: &alchemist_workloads::Workload) -> (alchemist_vm::Module, Vec<u8>, u64) {
    let module = w.module();
    let mut writer = if module.uses_threads() {
        TraceWriter::new_v2(Vec::new(), Some(w.source))
    } else {
        TraceWriter::new(Vec::new(), Some(w.source))
    }
    .expect("header");
    let outcome = alchemist_vm::run(&module, &w.exec_config(Scale::Tiny), &mut writer)
        .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
    let (bytes, _) = writer.finish(outcome.steps).expect("finish");
    (module, bytes, outcome.steps)
}

#[test]
fn live_seq_and_sharded_replay_yield_the_same_artifact_bytes_for_every_workload() {
    for w in alchemist_workloads::all() {
        let (module, trace, steps) = record(w);
        let (live, ..) = profile_module(
            &module,
            &w.exec_config(Scale::Tiny),
            ProfileConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
        let events: Vec<Event> = TraceReader::new(trace.as_slice())
            .expect("header")
            .map(|e| e.expect("decode"))
            .collect();
        let (seq, ..) = profile_events(
            &module,
            events.iter().copied(),
            steps,
            ProfileConfig::default(),
        );
        let (par, ..) = profile_events_par(&module, &events, steps, ProfileConfig::default(), 4)
            .expect("no shard panic");
        assert_eq!(seq, live, "{}: seq replay diverges from live", w.name);
        assert_eq!(par, live, "{}: jobs-4 replay diverges from live", w.name);

        // All three encode to the same canonical artifact — modulo the
        // shadow-layout telemetry, which describes the profiling machinery
        // rather than the program (a sharded replay allocates pages per
        // shard) and is excluded from semantic equality for the same
        // reason. Normalizing it makes the byte claim exact.
        let normalize = |mut p: alchemist_core::DepProfile| {
            p.shadow_stats = Default::default();
            ProfileArtifact::new(p).with_source(w.source)
        };
        let artifact = normalize(live);
        let bytes = artifact.to_bytes();
        assert_eq!(
            normalize(seq).to_bytes(),
            bytes,
            "{}: seq artifact bytes diverge",
            w.name
        );
        assert_eq!(
            normalize(par).to_bytes(),
            bytes,
            "{}: par artifact bytes diverge",
            w.name
        );
        let decoded = ProfileArtifact::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{}: decode failed: {e}", w.name));
        assert_eq!(decoded, artifact, "{}: lossy round trip", w.name);
        assert_eq!(decoded.to_bytes(), bytes, "{}: non-canonical", w.name);
    }
}

#[test]
fn merged_per_run_artifacts_equal_the_aggregated_run_for_every_workload() {
    for w in alchemist_workloads::all() {
        let module = w.module();
        let input = w.input(Scale::Tiny);
        let cfg = ProfileConfig::default();
        // Two runs on the same input (the suite is deterministic, so this
        // also holds for the threaded workloads), saved as two artifacts.
        let run = || {
            let (p, ..) =
                profile_module(&module, &ExecConfig::with_input(input.clone()), cfg.clone())
                    .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
            ProfileArtifact::new(p).with_source(w.source)
        };
        let mut merged = run();
        merged
            .merge(run(), None)
            .unwrap_or_else(|e| panic!("{}: merge failed: {e}", w.name));
        // The reference: profile the aggregated pair of runs directly.
        let (agg, _) = profile_many(&module, &[input.clone(), input.clone()], cfg)
            .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
        let direct = ProfileArtifact::new(agg).with_source(w.source);
        assert_eq!(
            merged.profile, direct.profile,
            "{}: merged != aggregated",
            w.name
        );
        assert_eq!(
            merged.to_bytes(),
            direct.to_bytes(),
            "{}: merged artifact bytes != direct aggregate's",
            w.name
        );
    }
}

/// Input-sensitive program for the property test: the dependence set
/// genuinely depends on which segment of the stream a run sees.
const INPUT_SENSITIVE: &str = "
    int flag;
    int sink;
    void scan(int i) {
        if (input(i) > 100) flag = i;
    }
    int main() {
        int i;
        int n = input_len();
        for (i = 0; i < n; i++) scan(i);
        sink = flag;
        return sink;
    }";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An event stream split at arbitrary run boundaries, profiled per
    /// segment, merges to the directly aggregated profile under any
    /// rotation of the merge order and either fold grouping.
    #[test]
    fn per_run_partials_merge_order_independently(
        data in proptest::collection::vec(-50i64..300, 1..40),
        cuts in proptest::collection::vec(0usize..1 << 20, 0..4),
        rot in 0usize..1 << 20,
    ) {
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % data.len()).collect();
        bounds.sort_unstable();
        bounds.dedup();
        let mut segments: Vec<Vec<i64>> = Vec::new();
        let mut prev = 0;
        for b in bounds {
            if b > prev {
                segments.push(data[prev..b].to_vec());
                prev = b;
            }
        }
        segments.push(data[prev..].to_vec());

        let module = compile_source(INPUT_SENSITIVE).expect("fixed program compiles");
        let cfg = ProfileConfig::default();
        let partials: Vec<PartialProfile> = segments
            .iter()
            .map(|seg| {
                let (p, ..) =
                    profile_module(&module, &ExecConfig::with_input(seg.clone()), cfg.clone())
                        .expect("no traps");
                PartialProfile::from(p)
            })
            .collect();
        let (agg, _) = profile_many(&module, &segments, cfg).expect("no traps");
        let reference = ProfileArtifact::new(agg).to_bytes();

        // Left fold, starting from the empty identity, in rotated order.
        let r = rot % partials.len();
        let mut left = PartialProfile::new();
        for i in 0..partials.len() {
            left.merge(&partials[(i + r) % partials.len()]);
        }
        prop_assert_eq!(
            ProfileArtifact::new(left.seal()).to_bytes(),
            reference.clone(),
            "rotated left fold diverges"
        );

        // Right fold: a · (b · (c · empty)).
        let mut right = PartialProfile::new();
        for p in partials.iter().rev() {
            let mut acc = p.clone();
            acc.merge(&right);
            right = acc;
        }
        prop_assert_eq!(
            ProfileArtifact::new(right.seal()).to_bytes(),
            reference,
            "right fold diverges"
        );
    }
}
