//! Whole-suite shape assertions: the qualitative results of the paper's
//! evaluation must hold on the reproduced workloads.
//!
//! These are the cheap (Tiny/Small scale) versions of the claims the bench
//! harness reports at full scale; see EXPERIMENTS.md for the mapping.

use alchemist::prelude::*;
use alchemist::workloads::{self, Scale};

fn report_for(name: &str, scale: Scale) -> (alchemist_vm::Module, ProfileReport) {
    let w = workloads::by_name(name).expect("workload exists");
    let (module, profile, _) = w.profile(scale);
    let report = ProfileReport::new(&profile, &module);
    (module, report)
}

/// Paper Fig. 6(a): gzip's largest construct is the driver loop with very
/// few violating RAW deps — a prime candidate.
#[test]
fn gzip_driver_loop_is_top_candidate() {
    let (_m, report) = report_for("gzip-1.3.5", Scale::Small);
    let top_loop = report
        .ranked()
        .iter()
        .find(|c| c.kind == ConstructKind::Loop)
        .expect("a loop ranks high");
    assert!(
        top_loop.norm_size > 0.5,
        "driver loop dominates the run: {:.3}",
        top_loop.norm_size
    );
    let flush = report.find("Method flush_block").expect("profiled");
    assert!(flush.norm_size > 0.1, "flush_block is sizable");
}

/// Paper Fig. 6(b): after removing the top construct, flush_block becomes
/// the leading remaining candidate — the paper's second parallelization
/// step.
#[test]
fn gzip_removal_step_promotes_flush_block() {
    let (_m, report) = report_for("gzip-1.3.5", Scale::Small);
    let main_head = report.find("Method main").unwrap().head;
    let zip_head = report.find("Method zip").unwrap().head;
    let top_loop = report
        .ranked()
        .iter()
        .find(|c| c.kind == ConstructKind::Loop)
        .unwrap()
        .head;
    let reduced = report
        .remove_with_nested(main_head)
        .remove_with_nested(zip_head)
        .remove_with_nested(top_loop);
    let leader = reduced
        .ranked()
        .iter()
        .find(|c| c.kind == ConstructKind::Method)
        .expect("a method remains");
    assert_eq!(
        leader.label,
        "Method flush_block",
        "flush_block leads after removal: {:?}",
        reduced.top(5).iter().map(|c| &c.label).collect::<Vec<_>>()
    );
}

/// Paper Fig. 6(c): the parser's dictionary constructs are large but
/// serial (violating RAW through the shared cursor), while the sentence
/// loop is clean.
#[test]
fn parser_dictionary_serial_sentences_parallel() {
    let (m, report) = report_for("197.parser", Scale::Small);
    let read_dict = report.find("Method read_dictionary").expect("profiled");
    assert!(
        read_dict.violating_raw > 0,
        "cursor chain must violate: {read_dict:?}"
    );
    // The sentence loop's only violating RAW is the `linkages` reduction,
    // which the recipe privatizes; the parsing work itself is independent.
    let w = workloads::by_name("197.parser").unwrap();
    let sentence_loop = w.resolve_targets(&m)[0];
    let c = report.by_head(sentence_loop).expect("profiled");
    for e in c.edges_of(DepKind::Raw).filter(|e| e.violating) {
        assert_eq!(
            e.var.as_deref(),
            Some("linkages"),
            "unexpected serial dependence in sentence loop: {e:?}"
        );
    }
}

/// Paper Fig. 6(d): xlload (C1) runs once more than the batch loop's
/// iteration count, and slightly outweighs the batch loop body.
#[test]
fn lisp_xlload_runs_once_more_than_batch_iterations() {
    let (_m, report) = report_for("130.li", Scale::Small);
    let xlload = report.find("Method xlload").expect("profiled");
    // 12 batches: 1 initial + 11 in-loop top-level calls, but xlload
    // recurses — count instances of the OUTERMOST calls via run_program.
    let run_program = report.find("Method run_program").expect("profiled");
    assert_eq!(run_program.inst, 12);
    assert!(xlload.inst >= 12, "xlload called at least once per batch");
}

/// Paper section IV-B1: delaunay's hottest constructs carry many violating
/// RAW dependences — not amenable to parallelization.
#[test]
fn delaunay_hot_constructs_heavily_violating() {
    let (_m, report) = report_for("delaunay", Scale::Small);
    let hot: Vec<_> = report
        .top(6)
        .iter()
        .filter(|c| matches!(c.kind, ConstructKind::Loop | ConstructKind::Method))
        .collect();
    let max_viol = hot.iter().map(|c| c.violating_raw).max().unwrap_or(0);
    assert!(
        max_viol >= 5,
        "refinement constructs must show dense violating RAW, got {max_viol}"
    );
    // And no sizable construct is a clean candidate.
    for c in &hot {
        if c.norm_size > 0.3 && c.label != "Method main" {
            assert!(
                !c.is_candidate(),
                "{} should not be spawnable: {c:?}",
                c.label
            );
        }
    }
}

/// Paper Table IV shape: bzip2/ogg marked constructs show WAW/WAR
/// conflicts on the shared state the paper privatized.
#[test]
fn table4_conflicts_name_the_papers_variables() {
    let (m, report) = report_for("bzip2", Scale::Small);
    let w = workloads::by_name("bzip2").unwrap();
    let head = w.resolve_targets(&m)[0];
    let c = report.by_head(head).unwrap();
    let conflict_vars: Vec<String> = c
        .edges
        .iter()
        .filter(|e| e.violating && e.kind != DepKind::Raw)
        .filter_map(|e| e.var.clone())
        .collect();
    assert!(
        conflict_vars.iter().any(|v| v.starts_with("bzf_")),
        "BZFILE-state conflicts expected, got {conflict_vars:?}"
    );

    let (m, report) = report_for("ogg", Scale::Small);
    let w = workloads::by_name("ogg").unwrap();
    let head = w.resolve_targets(&m)[0];
    let c = report.by_head(head).unwrap();
    let vars: Vec<String> = c.edges.iter().filter_map(|e| e.var.clone()).collect();
    assert!(
        vars.iter().any(|v| v == "errors" || v == "samples_read"),
        "ogg's errors/samples_read conflicts expected, got {vars:?}"
    );
}

/// Paper Table V shape: the speedup ORDER must match the paper —
/// aes < par2 < bzip2 <= ogg, with delaunay at the bottom.
#[test]
fn table5_speedup_order_matches_paper() {
    let speedup = |name: &str| -> f64 {
        let w = workloads::by_name(name).unwrap();
        let spec = w.parallel.as_ref().unwrap();
        let m = w.module();
        let mut cfg = ExtractConfig::default();
        for head in w.resolve_targets(&m) {
            cfg = cfg.mark(head);
        }
        for v in spec.privatized {
            cfg = cfg.privatize(v);
        }
        let trace = extract_tasks(&m, &w.exec_config(Scale::Small), cfg).expect("runs");
        simulate(&trace, &SimConfig::with_threads(4)).speedup
    };
    let aes = speedup("aes");
    let par2 = speedup("par2");
    let bzip2 = speedup("bzip2");
    let ogg = speedup("ogg");
    let delaunay = speedup("delaunay");
    assert!(
        delaunay < aes && aes < par2 && par2 < bzip2 && bzip2 <= ogg + 0.2,
        "order violated: delaunay {delaunay:.2} aes {aes:.2} par2 {par2:.2} \
         bzip2 {bzip2:.2} ogg {ogg:.2}"
    );
    assert!(ogg > 3.0, "ogg near-linear, got {ogg:.2}");
    assert!(
        delaunay <= 1.05,
        "delaunay must not speed up, got {delaunay:.2}"
    );
}

/// Profiling must not perturb program results (transparency).
#[test]
fn profiling_is_transparent() {
    for w in workloads::all() {
        let native = w.run_native(Scale::Tiny);
        let (_m, _p, profiled) = w.profile(Scale::Tiny);
        assert_eq!(native.output, profiled.output, "{}", w.name);
        assert_eq!(native.exit_value, profiled.exit_value, "{}", w.name);
        assert_eq!(native.steps, profiled.steps, "{}", w.name);
    }
}

/// Privatization is required: without the paper's transformations, the
/// near-linear workloads collapse (the profile-guided recipe is what
/// unlocks the speedup).
#[test]
fn transformations_are_load_bearing() {
    let w = workloads::by_name("bzip2").unwrap();
    let m = w.module();
    let mut with = ExtractConfig::default();
    let mut without = ExtractConfig::default();
    for head in w.resolve_targets(&m) {
        with = with.mark(head);
        without = without.mark(head);
    }
    for v in w.parallel.as_ref().unwrap().privatized {
        with = with.privatize(v);
    }
    let cfg = w.exec_config(Scale::Small);
    let s_with = simulate(
        &extract_tasks(&m, &cfg, with).unwrap(),
        &SimConfig::with_threads(4),
    )
    .speedup;
    let s_without = simulate(
        &extract_tasks(&m, &cfg, without).unwrap(),
        &SimConfig::with_threads(4),
    )
    .speedup;
    assert!(
        s_with > s_without + 0.5,
        "privatization must matter: with {s_with:.2} vs without {s_without:.2}"
    );
}
