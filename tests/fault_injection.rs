//! Fault injection over the full pipeline: traces truncated at every
//! chunk boundary (a mid-record kill), sampled mid-chunk truncations and
//! seeded random byte flips must (a) fail *typed* without `--recover` and
//! (b) salvage under `--recover` exactly the events of the surviving
//! intact chunks — the profile of the salvaged stream must equal a clean
//! replay of those same events. The CLI half pins the exit-code taxonomy:
//! 0 for a successful salvage, 3 for missing input, 4 for corrupt input.

use std::process::Command;

use alchemist_core::{profile_events, DepProfile, ProfileConfig};
use alchemist_trace::format::VERSION_V3;
use alchemist_trace::{
    decode_batches_par_recover, varint, RecoveryReport, TraceError, TraceReader, TraceWriter,
};
use alchemist_vm::{compile_source, Event, ExecConfig, NullSink};

const SRC: &str = "int g;
int work(int x) { int i; for (i = 0; i < 9; i++) g += x * i; return g; }
int main() { int i; for (i = 0; i < 12; i++) { if (i % 2 == 0) work(i); } return g; }";

/// Records `SRC` under v3 with small chunks: several CRC-protected chunks
/// plus the footer, the shape every injection below mutates.
fn record_v3() -> (alchemist_vm::Module, Vec<u8>, u64) {
    let module = compile_source(SRC).expect("compiles");
    let mut w = TraceWriter::new_v3(Vec::new(), Some(SRC))
        .expect("header")
        .with_chunk_capacity(64);
    let out = alchemist_vm::run(&module, &ExecConfig::default(), &mut w).expect("runs");
    let (bytes, stats) = w.finish(out.steps).expect("finish");
    assert!(stats.chunks >= 3, "test needs a multi-chunk trace");
    (module, bytes, out.steps)
}

/// Byte offsets where each chunk (footer included) starts, plus the file
/// end — derived by walking the wire format: after the header, each chunk
/// is `payload_len event_count t_first t_span` varints, a 4-byte CRC (v3),
/// then `payload_len` payload bytes.
fn chunk_starts(bytes: &[u8]) -> Vec<usize> {
    let mut pos = 4 + 2 + 2; // magic, version, flags
    let flags = u16::from_le_bytes([bytes[6], bytes[7]]);
    if flags & 1 != 0 {
        let src_len = varint::read_u64(bytes, &mut pos).expect("src_len") as usize;
        pos += src_len;
    }
    let mut starts = Vec::new();
    while pos < bytes.len() {
        starts.push(pos);
        let payload_len = varint::read_u64(bytes, &mut pos).expect("payload_len") as usize;
        for _ in 0..3 {
            varint::read_u64(bytes, &mut pos).expect("chunk head varint");
        }
        pos += 4 + payload_len; // CRC word + payload
    }
    assert_eq!(pos, bytes.len(), "walker must land exactly on EOF");
    starts.push(pos);
    starts
}

/// The clean event stream, split at the recorded chunk boundaries.
fn clean_chunk_events(bytes: &[u8]) -> Vec<Vec<Event>> {
    let events: Vec<Event> = TraceReader::new(bytes)
        .expect("header")
        .map(|e| e.expect("clean decode"))
        .collect();
    let counts: Vec<usize> = TraceReader::new(bytes)
        .expect("header")
        .read_chunk_infos()
        .expect("clean scan")
        .iter()
        .map(|c| c.events as usize)
        .collect();
    let mut chunks = Vec::new();
    let mut pos = 0;
    for n in counts {
        chunks.push(events[pos..pos + n].to_vec());
        pos += n;
    }
    assert_eq!(pos, events.len());
    chunks
}

/// Salvages `bytes`, returning the recovered events, the summary's step
/// count and the report. Exercised at two job counts: salvage must be
/// deterministic under sharded decode too.
fn salvage(bytes: &[u8]) -> (Vec<Event>, u64, RecoveryReport) {
    let reader = TraceReader::new(bytes).expect("header survives");
    let (batches, summary, report) = decode_batches_par_recover(reader, 1, None);
    let events: Vec<Event> = batches.iter().flat_map(|b| b.iter()).collect();
    assert_eq!(events.len() as u64, summary.events);

    let reader4 = TraceReader::new(bytes).expect("header survives");
    let (batches4, summary4, report4) = decode_batches_par_recover(reader4, 4, None);
    let events4: Vec<Event> = batches4.iter().flat_map(|b| b.iter()).collect();
    assert_eq!(events4, events, "salvage must not depend on --jobs");
    assert_eq!(report4, report, "recovery report must not depend on --jobs");
    assert_eq!(summary4.total_steps, summary.total_steps);

    (events, summary.total_steps, report)
}

fn profile_of(module: &alchemist_vm::Module, events: &[Event], steps: u64) -> DepProfile {
    let (p, ..) = profile_events(
        module,
        events.iter().copied(),
        steps,
        ProfileConfig::default(),
    );
    p
}

/// Replays without recovery; the typed error a plain replay must raise.
fn strict_replay(bytes: &[u8]) -> Result<u64, TraceError> {
    let mut reader = TraceReader::new(bytes)?;
    reader.replay_into(&mut NullSink).map(|s| s.events)
}

#[test]
fn truncation_at_every_chunk_boundary_salvages_the_exact_prefix() {
    let (module, bytes, _) = record_v3();
    let starts = chunk_starts(&bytes);
    let chunks = clean_chunk_events(&bytes);
    // starts[i] = first byte of chunk i, so truncating there leaves the
    // first i chunks intact (the last start is EOF — the clean file).
    for (i, &cut) in starts.iter().enumerate().take(starts.len() - 1) {
        let prefix = &bytes[..cut];
        let err = strict_replay(prefix).expect_err("footer is gone");
        assert!(
            matches!(err, TraceError::Truncated(_)),
            "boundary cut {i}: want Truncated, got {err:?}"
        );

        let (salvaged, steps, report) = salvage(prefix);
        let expect: Vec<Event> = chunks
            .iter()
            .take(i.min(chunks.len()))
            .flatten()
            .copied()
            .collect();
        assert_eq!(salvaged, expect, "boundary cut {i}: salvaged event set");
        assert!(!report.footer_recovered, "boundary cut {i}");
        assert_eq!(
            profile_of(&module, &salvaged, steps),
            profile_of(&module, &expect, steps),
            "boundary cut {i}: salvaged profile must equal a clean replay \
             of the surviving events"
        );
    }
}

#[test]
fn sampled_mid_chunk_truncations_salvage_only_complete_chunks() {
    let (module, bytes, _) = record_v3();
    let starts = chunk_starts(&bytes);
    let chunks = clean_chunk_events(&bytes);
    let body = starts[0]..bytes.len() - 1;
    let step = ((body.end - body.start) / 97).max(1);
    for cut in body.step_by(step) {
        if starts.contains(&cut) {
            continue; // boundary cuts are pinned exhaustively above
        }
        let prefix = &bytes[..cut];
        assert!(strict_replay(prefix).is_err(), "cut {cut}: must fail typed");

        // The cut lands inside chunk k: exactly chunks 0..k survive.
        let k = starts.iter().take_while(|&&s| s < cut).count() - 1;
        let (salvaged, steps, report) = salvage(prefix);
        let expect: Vec<Event> = chunks
            .iter()
            .take(k.min(chunks.len()))
            .flatten()
            .copied()
            .collect();
        assert_eq!(salvaged, expect, "cut {cut}: salvaged event set");
        assert!(
            report.truncated_tail || !report.footer_recovered,
            "cut {cut}"
        );
        assert_eq!(
            profile_of(&module, &salvaged, steps),
            profile_of(&module, &expect, steps),
            "cut {cut}: salvaged profile"
        );
    }
}

#[test]
fn crc_flip_is_a_precise_typed_error_and_recover_skips_exactly_that_chunk() {
    let (module, bytes, steps) = record_v3();
    let starts = chunk_starts(&bytes);
    let chunks = clean_chunk_events(&bytes);
    // Flip one payload byte in the middle event-bearing chunk.
    let victim = (starts.len() - 2) / 2;
    let mut mutated = bytes.clone();
    let mid = (starts[victim] + starts[victim + 1]) / 2;
    mutated[mid] ^= 0x40;

    match strict_replay(&mutated).expect_err("CRC must catch the flip") {
        TraceError::ChecksumMismatch { chunk_index, .. } => {
            assert_eq!(chunk_index, victim as u64, "error names the damaged chunk")
        }
        other => panic!("want ChecksumMismatch, got {other:?}"),
    }

    let (salvaged, salvaged_steps, report) = salvage(&mutated);
    let expect: Vec<Event> = chunks
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != victim)
        .flat_map(|(_, c)| c.iter().copied())
        .collect();
    assert_eq!(salvaged, expect, "exactly the damaged chunk is dropped");
    assert_eq!(report.chunks_skipped, 1);
    assert_eq!(report.crc_mismatches, 1);
    assert_eq!(report.events_lost, chunks[victim].len() as u64);
    assert!(
        report.footer_recovered,
        "damage was mid-file, footer intact"
    );
    assert_eq!(salvaged_steps, steps, "footer step count survives");
    assert_eq!(
        profile_of(&module, &salvaged, salvaged_steps),
        profile_of(&module, &expect, steps),
        "salvaged profile equals a clean replay of surviving events"
    );
}

/// Deterministic xorshift — seeded, so a failure reproduces exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn seeded_random_byte_flips_never_panic_and_salvage_stays_chunk_aligned() {
    let (_, bytes, _) = record_v3();
    let starts = chunk_starts(&bytes);
    let chunks = clean_chunk_events(&bytes);
    let mut rng = Rng(0x5DEECE66D);
    for round in 0..64 {
        let mut mutated = bytes.clone();
        let at = (rng.next() as usize) % mutated.len();
        let bit = 1u8 << (rng.next() % 8);
        mutated[at] ^= bit;

        // Flips in the header/source region may reject at open; that is a
        // typed error, not a salvage case.
        if at < starts[0] {
            match TraceReader::new(mutated.as_slice()) {
                Ok(_) => {} // e.g. a source-text flip that stays valid UTF-8
                Err(e) => {
                    let _ = e.to_string(); // typed and printable, job done
                    continue;
                }
            }
        }

        // Strict replay must never panic; an error is acceptable and often
        // mandatory, success only if the flip dodged every checksum (it
        // cannot — every byte past the header is CRC-covered — or it hit
        // the source region without breaking UTF-8).
        let _ = strict_replay(&mutated);

        // Salvage must never panic, and every salvaged event must come
        // from an intact chunk, in order: the result is the clean chunk
        // sequence with zero or more whole chunks deleted.
        let (salvaged, _, report) = salvage(&mutated);
        let mut pos = 0;
        for chunk in &chunks {
            if salvaged.len() - pos >= chunk.len() && salvaged[pos..pos + chunk.len()] == chunk[..]
            {
                pos += chunk.len();
            }
        }
        assert_eq!(
            pos,
            salvaged.len(),
            "round {round}: flip at byte {at} (bit {bit:#04x}) produced a \
             salvage that is not a chunk-aligned subsequence"
        );
        assert!(
            report.chunks_total as usize <= chunks.len() + 1,
            "round {round}: report counts more chunks than were written"
        );
    }
}

#[test]
fn recover_on_a_clean_trace_is_clean_and_equal_to_strict_replay() {
    let (module, bytes, steps) = record_v3();
    let clean: Vec<Event> = TraceReader::new(bytes.as_slice())
        .expect("header")
        .map(|e| e.expect("decode"))
        .collect();
    let (salvaged, salvaged_steps, report) = salvage(&bytes);
    assert!(
        report.is_clean(),
        "clean trace must report clean: {report:?}"
    );
    assert_eq!(report.chunks_skipped, 0);
    assert_eq!(salvaged, clean);
    assert_eq!(salvaged_steps, steps);
    assert_eq!(
        profile_of(&module, &salvaged, salvaged_steps),
        profile_of(&module, &clean, steps)
    );
}

// ---------------------------------------------------------------------------
// CLI half: the same faults through the binary, pinning the exit taxonomy.
// ---------------------------------------------------------------------------

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_alchemist"))
}

fn temp(name: &str, ext: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "alchemist-fault-{name}-{}.{ext}",
        std::process::id()
    ))
}

#[test]
fn cli_truncated_trace_replays_under_recover_and_exits_corrupt_without() {
    let src = temp("cli-src", "mc");
    std::fs::write(&src, SRC).expect("write source");
    let trace = temp("cli-trace", "alct");
    let out = bin()
        .args(["record", "--crc", "--chunk-events", "64", "-o"])
        .arg(&trace)
        .arg(&src)
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Kill the tail mid-chunk: a simulated mid-record crash.
    let bytes = std::fs::read(&trace).expect("read trace");
    let starts = chunk_starts(&bytes);
    assert!(starts.len() >= 4, "need multiple chunks");
    std::fs::write(&trace, &bytes[..starts[starts.len() - 2] + 3]).expect("truncate");

    // Without --recover: corrupt-input exit code, precise message.
    let strict = bin().args(["replay"]).arg(&trace).output().expect("spawns");
    assert_eq!(strict.status.code(), Some(4), "corrupt trace exits 4");
    let stderr = String::from_utf8_lossy(&strict.stderr);
    assert!(stderr.contains("error:"), "stderr: {stderr}");

    // With --recover: success, salvage surfaced on stderr, stats report it.
    let rec = bin()
        .args(["replay", "--recover", "--analysis", "stats"])
        .arg(&trace)
        .output()
        .expect("spawns");
    assert_eq!(
        rec.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&rec.stderr)
    );
    let stdout = String::from_utf8_lossy(&rec.stdout);
    let stderr = String::from_utf8_lossy(&rec.stderr);
    assert!(stderr.contains("salvaged replay:"), "stderr: {stderr}");
    assert!(stdout.contains("recovery:"), "stdout: {stdout}");

    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(trace);
}

#[test]
fn cli_missing_trace_exits_with_io_code_and_names_the_path() {
    let out = bin()
        .args(["replay", "/no/such/alchemist-trace.alct"])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(3), "missing input exits 3");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("/no/such/alchemist-trace.alct"),
        "stderr must name the path: {stderr}"
    );
}

#[test]
fn cli_merge_of_only_corrupt_artifacts_exits_corrupt_and_writes_nothing() {
    let a = temp("merge-a", "alcp");
    let b = temp("merge-b", "alcp");
    std::fs::write(&a, b"not an artifact").expect("write");
    std::fs::write(&b, b"also garbage").expect("write");
    let out_path = temp("merge-out", "alcp");
    let out = bin()
        .args(["profile", "merge", "-o"])
        .arg(&out_path)
        .arg(&a)
        .arg(&b)
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(4), "all-corrupt merge exits 4");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nothing was merged"), "stderr: {stderr}");
    assert!(!out_path.exists(), "no empty artifact may be published");
    let _ = std::fs::remove_file(a);
    let _ = std::fs::remove_file(b);
}

#[test]
fn cli_record_emits_v3_only_when_asked() {
    let src = temp("v3-src", "mc");
    std::fs::write(&src, SRC).expect("write source");
    for (crc, want_version) in [(false, 1u16), (true, VERSION_V3)] {
        let trace = temp(if crc { "v3-on" } else { "v3-off" }, "alct");
        let mut cmd = bin();
        cmd.arg("record");
        if crc {
            cmd.arg("--crc");
        }
        let out = cmd
            .arg("-o")
            .arg(&trace)
            .arg(&src)
            .output()
            .expect("spawns");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let bytes = std::fs::read(&trace).expect("read");
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        assert_eq!(version, want_version, "--crc={crc}");
        let _ = std::fs::remove_file(trace);
    }
    let _ = std::fs::remove_file(src);
}
