//! Golden-value regression tests: the workloads are fully deterministic,
//! so their Tiny-scale instruction counts, exit values and printed output
//! are pinned exactly. Any change to a workload program, the input
//! generators, the compiler or the VM that shifts these values must be
//! deliberate (and EXPERIMENTS.md re-measured).

use alchemist::workloads::{self, Scale};

#[test]
fn tiny_scale_outputs_are_pinned() {
    let golden: &[(&str, u64, i64, Vec<i64>)] = &[
        ("197.parser", 113210, 235, vec![235, 200]),
        ("bzip2", 481670, 68, vec![68, 420]),
        ("gzip-1.3.5", 57548, 122, vec![122, 600]),
        ("130.li", 24221, 338228, vec![2, 338228]),
        ("ogg", 869131, 489, vec![489, 512, 8]),
        ("aes", 137708, 32, vec![512, 32]),
        // Step count re-pinned when the staging-buffer wrap (`& 8191`) was
        // extended to the verify/recombine loops so Scale::Huge inputs
        // (n > 8192) stay in bounds; outputs and events are unchanged.
        ("par2", 435854, 1024, vec![4, 1024]),
        ("delaunay", 664613, 1166, vec![508, 1016, 1166]),
        ("producer_consumer", 34042, 729340, vec![400, 400, 729340]),
        ("pipeline", 33843, 73144, vec![61105, 49315, 73144]),
        (
            "false_sharing",
            10873,
            172226,
            vec![21533, 21457, 342, 172226],
        ),
    ];
    assert_eq!(golden.len(), workloads::all().len(), "all workloads pinned");
    for (name, steps, exit, output) in golden {
        let w = workloads::by_name(name).expect("workload exists");
        let out = w.run_native(Scale::Tiny);
        assert_eq!(out.steps, *steps, "{name}: instruction count drifted");
        assert_eq!(out.exit_value, *exit, "{name}: exit value drifted");
        assert_eq!(&out.output, output, "{name}: printed output drifted");
    }
}

#[test]
fn workload_self_checks_hold() {
    // Cross-workload sanity that the programs compute what they claim.
    let gzip = workloads::by_name("gzip-1.3.5")
        .unwrap()
        .run_native(Scale::Tiny);
    assert_eq!(gzip.output[1], 600, "gzip consumed all 600 input literals");
    assert!(gzip.output[0] > 0, "gzip produced output bytes");

    let bzip2 = workloads::by_name("bzip2").unwrap().run_native(Scale::Tiny);
    assert_eq!(bzip2.output[1], 420, "bzip2 consumed its whole input");

    let aes = workloads::by_name("aes").unwrap().run_native(Scale::Tiny);
    assert_eq!(aes.output[0], 512, "aes emitted one byte per input byte");
    assert_eq!(aes.output[1], 32, "aes processed 32 blocks of 16 bytes");

    let par2 = workloads::by_name("par2").unwrap().run_native(Scale::Tiny);
    assert_eq!(par2.output[0], 4, "par2 opened all four files");

    let ogg = workloads::by_name("ogg").unwrap().run_native(Scale::Tiny);
    assert_eq!(ogg.output[1], 512, "ogg read every sample");

    let del = workloads::by_name("delaunay")
        .unwrap()
        .run_native(Scale::Tiny);
    assert!(del.output[2] > del.output[0], "refinement grew the mesh");

    let pc = workloads::by_name("producer_consumer")
        .unwrap()
        .run_native(Scale::Tiny);
    assert_eq!(pc.output[0], pc.output[1], "every produced item consumed");
    assert_eq!(pc.output[0], 400, "producer handled the whole input");

    let fs = workloads::by_name("false_sharing")
        .unwrap()
        .run_native(Scale::Tiny);
    assert_eq!(
        fs.output[2], 342,
        "the contended stamp reflects the deterministic interleaving \
         (lost updates are possible but must be reproducible)"
    );
}

#[test]
fn threaded_workloads_profile_cross_thread_dependences() {
    // The thread-aware profiler must classify a healthy share of each
    // threaded workload's dependences as cross-thread, and the eight
    // single-threaded programs must show none.
    let expected: &[(&str, u64, u64)] = &[
        ("producer_consumer", 6795, 402),
        ("pipeline", 4219, 772),
        ("false_sharing", 1818, 340),
    ];
    for (name, intra, cross) in expected {
        let w = workloads::by_name(name).expect("workload exists");
        let (_, profile, _) = w.profile(Scale::Tiny);
        assert_eq!(
            profile.intra_thread_deps, *intra,
            "{name}: intra-thread count drifted"
        );
        assert_eq!(
            profile.cross_thread_deps, *cross,
            "{name}: cross-thread count drifted"
        );
        assert!(*cross > 0, "{name} must share across threads");
    }
    for w in workloads::paper_suite() {
        let (_, profile, _) = w.profile(Scale::Tiny);
        assert_eq!(
            profile.cross_thread_deps, 0,
            "{}: single-threaded programs have no cross-thread deps",
            w.name
        );
    }
}
