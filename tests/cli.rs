//! End-to-end tests of the `alchemist` command-line binary.

use std::io::Write as _;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_alchemist"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("alchemist-test-{name}-{}.mc", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(contents.as_bytes()).expect("write");
    path
}

const PROGRAM: &str = "
int out[64];
int stats;
void work(int c) {
    int i;
    for (i = 0; i < 16; i++) out[c * 16 + i] = c * i;
    stats += c;
}
int main() {
    int c;
    for (c = 0; c < 4; c++) work(c);
    print(stats);
    return stats;
}
";

/// Workspace-wiring smoke test: the built `alchemist` binary profiles a
/// minimal program end-to-end and renders a report naming `Method main`.
#[test]
fn profile_smoke_renders_method_main() {
    let path = write_temp(
        "smoke",
        "int g;\nint main() { int i; for (i = 0; i < 8; i++) g += i; return g; }\n",
    );
    let out = bin().args(["profile"]).arg(&path).output().expect("spawns");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Method main"), "report missing: {stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn run_command_executes_and_prints() {
    let path = write_temp("run", PROGRAM);
    let out = bin().args(["run"]).arg(&path).output().expect("spawns");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("6"), "print output missing: {stdout}");
    assert!(stdout.contains("exit value: 6"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn profile_command_renders_report() {
    let path = write_temp("profile", PROGRAM);
    let out = bin()
        .args(["profile"])
        .arg(&path)
        .args(["--top", "5", "--war-waw", "work"])
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Method main"), "{stdout}");
    assert!(stdout.contains("Method work"), "{stdout}");
    assert!(stdout.contains("Tdur="), "{stdout}");
    assert!(
        stdout.contains("WAR/WAW profile for Method work"),
        "{stdout}"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn advise_command_suggests_and_simulates() {
    let path = write_temp("advise", PROGRAM);
    let out = bin()
        .args(["advise"])
        .arg(&path)
        .args(["--threads", "4"])
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("parallelization candidates") || stdout.contains("no construct qualifies"),
        "{stdout}"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn input_flag_feeds_the_program() {
    let path = write_temp(
        "input",
        "int main() { print(input(0) + input(1)); return input_len(); }",
    );
    let out = bin()
        .args(["run"])
        .arg(&path)
        .args(["--input", "40,2"])
        .output()
        .expect("spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("42"), "{stdout}");
    assert!(stdout.contains("exit value: 2"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn workloads_command_lists_suite() {
    let out = bin().args(["workloads"]).output().expect("spawns");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["gzip-1.3.5", "bzip2", "197.parser", "delaunay"] {
        assert!(stdout.contains(name), "missing {name}: {stdout}");
    }
}

#[test]
fn workloads_json_flag_emits_machine_readable_suite() {
    let out = bin()
        .args(["workloads", "--json"])
        .output()
        .expect("spawns");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('['), "{stdout}");
    assert!(stdout.trim_end().ends_with(']'), "{stdout}");
    assert!(stdout.contains("\"name\": \"gzip-1.3.5\""), "{stdout}");
    assert!(stdout.contains("\"paper_speedup\": 3.46"), "{stdout}");
    assert!(stdout.contains("\"paper_speedup\": null"), "{stdout}");
    assert!(stdout.contains("\"loc\": "), "{stdout}");
}

#[test]
fn unknown_flag_is_named_without_generic_usage() {
    let out = bin()
        .args(["workloads", "--frobnicate"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--frobnicate"), "{stderr}");
    assert!(stderr.contains("workloads"), "{stderr}");
    assert!(
        !stderr.contains("usage:"),
        "unknown-flag errors must not dump the usage block: {stderr}"
    );

    let path = write_temp("unknownflag", PROGRAM);
    let out = bin()
        .args(["profile"])
        .arg(&path)
        .args(["--nope"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--nope"), "{stderr}");
    assert!(stderr.contains("--war-waw"), "lists valid flags: {stderr}");
    assert!(!stderr.contains("usage:"), "{stderr}");
    let _ = std::fs::remove_file(path);
}

fn temp_trace_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("alchemist-test-{name}-{}.alct", std::process::id()))
}

#[test]
fn record_then_replay_profile_matches_live_profile() {
    let src_path = write_temp("recordrt", PROGRAM);
    let trace_path = temp_trace_path("recordrt");

    let rec = bin()
        .args(["record"])
        .arg(&src_path)
        .arg("-o")
        .arg(&trace_path)
        .output()
        .expect("spawns");
    assert!(
        rec.status.success(),
        "{}",
        String::from_utf8_lossy(&rec.stderr)
    );
    let rec_out = String::from_utf8_lossy(&rec.stdout);
    assert!(rec_out.contains("recorded"), "{rec_out}");
    assert!(rec_out.contains("bytes/event"), "{rec_out}");

    let live = bin()
        .args(["profile"])
        .arg(&src_path)
        .output()
        .expect("spawns");
    let replayed = bin()
        .args(["replay"])
        .arg(&trace_path)
        .args(["--analysis", "profile"])
        .output()
        .expect("spawns");
    assert!(
        replayed.status.success(),
        "{}",
        String::from_utf8_lossy(&replayed.stderr)
    );
    let live_out = String::from_utf8_lossy(&live.stdout);
    let replay_out = String::from_utf8_lossy(&replayed.stdout);
    // The ranked construct report (everything after the run header) must be
    // byte-identical between the live and the replayed analysis.
    let tail = |s: &str| s.split_once("\n\n").map(|x| x.1.to_owned()).unwrap();
    assert_eq!(tail(&live_out), tail(&replay_out), "reports diverge");

    let _ = std::fs::remove_file(src_path);
    let _ = std::fs::remove_file(trace_path);
}

#[test]
fn parallel_replay_report_is_identical_to_sequential() {
    let src_path = write_temp("recordpar", PROGRAM);
    let trace_path = temp_trace_path("recordpar");
    let rec = bin()
        .args(["record"])
        .arg(&src_path)
        .arg("-o")
        .arg(&trace_path)
        .output()
        .expect("spawns");
    assert!(
        rec.status.success(),
        "{}",
        String::from_utf8_lossy(&rec.stderr)
    );
    let seq = bin()
        .args(["replay"])
        .arg(&trace_path)
        .args(["--analysis", "profile"])
        .output()
        .expect("spawns");
    let par = bin()
        .args(["replay"])
        .arg(&trace_path)
        .args(["--analysis", "profile", "--jobs", "4"])
        .output()
        .expect("spawns");
    assert!(
        par.status.success(),
        "{}",
        String::from_utf8_lossy(&par.stderr)
    );
    // Determinism guarantee: sharded replay's stdout is byte-identical,
    // modulo the one intentionally jobs-dependent line — the shard
    // imbalance note, which only a sharded run can observe. PROGRAM's
    // traffic clusters on a handful of hot words (the frame locals `i` and
    // `c`), so no block-cyclic stride the partition ladder can pick spreads
    // it evenly across 4 shards and the note must appear.
    let seq_out = String::from_utf8_lossy(&seq.stdout).into_owned();
    let par_out = String::from_utf8_lossy(&par.stdout).into_owned();
    assert!(
        !seq_out.contains("shard imbalance"),
        "sequential replay has no shards to be imbalanced: {seq_out}"
    );
    assert!(
        par_out.contains("note: shard imbalance max/min = "),
        "expected the imbalance note in the sharded report: {par_out}"
    );
    let par_sans_note: String = par_out
        .lines()
        .filter(|l| !l.starts_with("note: shard imbalance"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(seq_out, par_sans_note, "sharded report diverges");
    // The shard summary goes to stderr, out of the report's way.
    assert!(
        String::from_utf8_lossy(&par.stderr).contains("memory events per shard"),
        "{}",
        String::from_utf8_lossy(&par.stderr)
    );

    // The stats analysis honors --jobs too (chunk-parallel decode), with
    // identical output.
    let stats_seq = bin()
        .args(["replay"])
        .arg(&trace_path)
        .args(["--analysis", "stats"])
        .output()
        .expect("spawns");
    let stats_par = bin()
        .args(["replay"])
        .arg(&trace_path)
        .args(["--analysis", "stats", "--jobs", "2"])
        .output()
        .expect("spawns");
    assert!(stats_par.status.success());
    assert_eq!(stats_seq.stdout, stats_par.stdout, "stats diverge");
    // Throughput is wall-clock (run-dependent), so it reports on stderr
    // where it cannot perturb the deterministic stats block above.
    for out in [&stats_seq, &stats_par] {
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("throughput: "),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let zero = bin()
        .args(["replay"])
        .arg(&trace_path)
        .args(["--jobs", "0"])
        .output()
        .expect("spawns");
    assert!(!zero.status.success());
    assert!(
        String::from_utf8_lossy(&zero.stderr).contains("--jobs must be >= 1"),
        "{}",
        String::from_utf8_lossy(&zero.stderr)
    );

    let _ = std::fs::remove_file(src_path);
    let _ = std::fs::remove_file(trace_path);
}

#[test]
fn batch_size_is_validated_and_changes_nothing_observable() {
    let src_path = write_temp("batchsize", PROGRAM);
    let trace_path = temp_trace_path("batchsize");
    // --batch-size 0 is rejected with a named-flag error on every command
    // that takes it.
    for cmd in [&["run"][..], &["record"], &["replay"]] {
        let out = bin()
            .args(cmd)
            .arg(&src_path)
            .args(["--batch-size", "0"])
            .output()
            .expect("spawns");
        assert!(!out.status.success(), "{cmd:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--batch-size must be >= 1"),
            "{cmd:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // Recording with a tiny batch size produces a byte-identical trace.
    let rec_default = bin()
        .args(["record"])
        .arg(&src_path)
        .arg("-o")
        .arg(&trace_path)
        .output()
        .expect("spawns");
    assert!(rec_default.status.success());
    let default_bytes = std::fs::read(&trace_path).expect("trace written");
    let rec_tiny = bin()
        .args(["record"])
        .arg(&src_path)
        .arg("-o")
        .arg(&trace_path)
        .args(["--batch-size", "3"])
        .output()
        .expect("spawns");
    assert!(rec_tiny.status.success());
    let tiny_bytes = std::fs::read(&trace_path).expect("trace written");
    assert_eq!(default_bytes, tiny_bytes, ".alct must be byte-identical");
    // Replaying with an odd batch size renders the identical report.
    let a = bin()
        .args(["replay"])
        .arg(&trace_path)
        .output()
        .expect("spawns");
    let b = bin()
        .args(["replay"])
        .arg(&trace_path)
        .args(["--batch-size", "7"])
        .output()
        .expect("spawns");
    assert!(b.status.success());
    assert_eq!(a.stdout, b.stdout, "replay report diverges");
    let _ = std::fs::remove_file(src_path);
    let _ = std::fs::remove_file(trace_path);
}

#[test]
fn scale_and_shard_tunables_are_validated() {
    let src_path = write_temp("scaleflags", PROGRAM);
    let trace_path = temp_trace_path("scaleflags");
    let rec = bin()
        .args(["record"])
        .arg(&src_path)
        .arg("-o")
        .arg(&trace_path)
        .output()
        .expect("spawns");
    assert!(rec.status.success());
    // The handoff tunables take the same >= 1 validation as --batch-size.
    for flag in ["--shard-flush", "--shard-depth"] {
        let out = bin()
            .args(["replay"])
            .arg(&trace_path)
            .args([flag, "0"])
            .output()
            .expect("spawns");
        assert!(!out.status.success(), "{flag}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(&format!("{flag} must be >= 1")),
            "{flag}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // --scale is for bundled workload names; on a real file it is an
    // error, not a silent no-op.
    let out = bin()
        .args(["run"])
        .arg(&src_path)
        .args(["--scale", "small"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--scale only applies"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // A bad scale value names the accepted set.
    let out = bin()
        .args(["run", "ogg", "--scale", "gigantic"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown scale `gigantic`"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // A positional that is neither a file nor a workload name fails with a
    // message pointing at both possibilities.
    let out = bin()
        .args(["replay", "no_such_workload_anywhere"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no bundled workload has that name"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(src_path);
    let _ = std::fs::remove_file(trace_path);
}

#[test]
fn workload_name_positional_records_and_replays() {
    // `record <workload>` and `replay <workload>` resolve bundled names:
    // replaying the name must render the same report as recording that
    // workload to a file and replaying the file.
    let trace_path =
        std::env::temp_dir().join(format!("alchemist-test-wlname-{}.alct", std::process::id()));
    let rec = bin()
        .args(["record", "130.li", "-o"])
        .arg(&trace_path)
        .output()
        .expect("spawns");
    assert!(
        rec.status.success(),
        "{}",
        String::from_utf8_lossy(&rec.stderr)
    );
    let from_file = bin()
        .args(["replay"])
        .arg(&trace_path)
        .output()
        .expect("spawns");
    assert!(from_file.status.success());
    let from_name = bin().args(["replay", "130.li"]).output().expect("spawns");
    assert!(
        from_name.status.success(),
        "{}",
        String::from_utf8_lossy(&from_name.stderr)
    );
    assert_eq!(
        from_file.stdout, from_name.stdout,
        "workload-name replay diverges from file replay"
    );
    // The handoff tunables change scheduling, never results: a sharded
    // replay with a degenerate 1-event flush and 1-deep channel still
    // renders the sequential report (modulo the jobs-dependent imbalance
    // note).
    let tuned = bin()
        .args(["replay", "130.li"])
        .args(["--jobs", "3", "--shard-flush", "1", "--shard-depth", "1"])
        .output()
        .expect("spawns");
    assert!(
        tuned.status.success(),
        "{}",
        String::from_utf8_lossy(&tuned.stderr)
    );
    let strip = |bytes: &[u8]| -> String {
        String::from_utf8_lossy(bytes)
            .lines()
            .filter(|l| !l.starts_with("note: shard imbalance"))
            .map(|l| format!("{l}\n"))
            .collect()
    };
    assert_eq!(
        strip(&from_file.stdout),
        strip(&tuned.stdout),
        "shard tunables leaked into the report"
    );
    let _ = std::fs::remove_file(trace_path);
}

#[test]
fn replay_analysis_accepts_a_comma_separated_list() {
    let src_path = write_temp("analysislist", PROGRAM);
    let trace_path = temp_trace_path("analysislist");
    let rec = bin()
        .args(["record"])
        .arg(&src_path)
        .arg("-o")
        .arg(&trace_path)
        .output()
        .expect("spawns");
    assert!(rec.status.success());

    let combined = bin()
        .args(["replay"])
        .arg(&trace_path)
        .args(["--analysis", "profile,advise,stats"])
        .output()
        .expect("spawns");
    assert!(
        combined.status.success(),
        "{}",
        String::from_utf8_lossy(&combined.stderr)
    );
    let out = String::from_utf8_lossy(&combined.stdout);
    assert!(out.contains("Method main"), "profile section: {out}");
    assert!(
        out.contains("parallelization candidates") || out.contains("no construct qualifies"),
        "advise section: {out}"
    );
    assert!(out.contains("embedded source: yes"), "stats section: {out}");
    // Each single-analysis run's output appears verbatim in the combined
    // run, in the requested order.
    for (i, analysis) in ["profile", "advise", "stats"].iter().enumerate() {
        let single = bin()
            .args(["replay"])
            .arg(&trace_path)
            .args(["--analysis", analysis])
            .output()
            .expect("spawns");
        let single_out = String::from_utf8_lossy(&single.stdout).into_owned();
        let at = out.find(single_out.as_str());
        assert!(at.is_some(), "{analysis} section missing from combined run");
        if i == 0 {
            assert_eq!(at, Some(0), "profile leads the combined output");
        }
    }

    let bad = bin()
        .args(["replay"])
        .arg(&trace_path)
        .args(["--analysis", "profile,bogus"])
        .output()
        .expect("spawns");
    assert!(!bad.status.success());
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("unknown analysis `bogus`"),
        "{}",
        String::from_utf8_lossy(&bad.stderr)
    );
    let _ = std::fs::remove_file(src_path);
    let _ = std::fs::remove_file(trace_path);
}

#[test]
fn replay_stats_and_advise_run_offline() {
    let src_path = write_temp("replaystats", PROGRAM);
    let trace_path = temp_trace_path("replaystats");
    let rec = bin()
        .args(["record"])
        .arg(&src_path)
        .arg("--out")
        .arg(&trace_path)
        .output()
        .expect("spawns");
    assert!(rec.status.success());
    // The source file is gone: replay must work from the trace alone.
    let _ = std::fs::remove_file(&src_path);

    let stats = bin()
        .args(["replay"])
        .arg(&trace_path)
        .args(["--analysis", "stats"])
        .output()
        .expect("spawns");
    assert!(
        stats.status.success(),
        "{}",
        String::from_utf8_lossy(&stats.stderr)
    );
    let stats_out = String::from_utf8_lossy(&stats.stdout);
    assert!(stats_out.contains("embedded source: yes"), "{stats_out}");
    assert!(stats_out.contains("bytes/event"), "{stats_out}");
    assert!(stats_out.contains("reads"), "{stats_out}");

    let advise = bin()
        .args(["replay"])
        .arg(&trace_path)
        .args(["--analysis", "advise", "--threads", "4"])
        .output()
        .expect("spawns");
    assert!(
        advise.status.success(),
        "{}",
        String::from_utf8_lossy(&advise.stderr)
    );
    let advise_out = String::from_utf8_lossy(&advise.stdout);
    assert!(
        advise_out.contains("parallelization candidates")
            || advise_out.contains("no construct qualifies"),
        "{advise_out}"
    );
    let _ = std::fs::remove_file(trace_path);
}

#[test]
fn replay_rejects_foreign_files_with_typed_error() {
    let path = write_temp("notatrace", PROGRAM);
    let out = bin().args(["replay"]).arg(&path).output().expect("spawns");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad magic"), "{stderr}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn bad_source_reports_error_and_nonzero_exit() {
    let path = write_temp("bad", "int main( { return 0; }");
    let out = bin().args(["profile"]).arg(&path).output().expect("spawns");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "{stderr}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn missing_file_reports_error() {
    let out = bin()
        .args(["run", "/nonexistent/alchemist-test.mc"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn unknown_command_prints_usage() {
    let out = bin().args(["bogus"]).output().expect("spawns");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn simulate_command_reports_speedup() {
    let path = write_temp("simulate", PROGRAM);
    let out = bin()
        .args(["simulate"])
        .arg(&path)
        .args(["--mark", "work", "--privatize", "stats", "--threads", "4"])
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("4 tasks"), "{stdout}");
    assert!(stdout.contains("x"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn simulate_timeline_renders_workers() {
    let path = write_temp("timeline", PROGRAM);
    let out = bin()
        .args(["simulate"])
        .arg(&path)
        .args(["--mark", "work", "--privatize", "stats", "--timeline"])
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("w0 |"), "{stdout}");
    assert!(stdout.contains("speedup="), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn simulate_rejects_unknown_mark_and_privatize() {
    let path = write_temp("simbad", PROGRAM);
    let out = bin()
        .args(["simulate"])
        .arg(&path)
        .args(["--mark", "nonexistent"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no function"));
    let out = bin()
        .args(["simulate"])
        .arg(&path)
        .args(["--mark", "work", "--privatize", "ghost"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no global"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn profile_csv_exports_are_written() {
    let path = write_temp("csv", PROGRAM);
    let c_path = std::env::temp_dir().join(format!("alch-c-{}.csv", std::process::id()));
    let e_path = std::env::temp_dir().join(format!("alch-e-{}.csv", std::process::id()));
    let out = bin()
        .args(["profile"])
        .arg(&path)
        .arg("--csv-constructs")
        .arg(&c_path)
        .arg("--csv-edges")
        .arg(&e_path)
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let constructs = std::fs::read_to_string(&c_path).expect("constructs csv written");
    assert!(constructs.starts_with("rank,label,kind"));
    let edges = std::fs::read_to_string(&e_path).expect("edges csv written");
    assert!(edges.starts_with("construct,kind,head_line"));
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(c_path);
    let _ = std::fs::remove_file(e_path);
}

fn temp_artifact_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("alchemist-test-{name}-{}.alcp", std::process::id()))
}

/// The headline `.alcp` invariant, end to end through the binary: merging
/// per-run artifacts yields byte-for-byte the artifact of the directly
/// aggregated run, and `profile query` renders the same report for both.
#[test]
fn profile_save_merge_query_round_trips_through_files() {
    let src = write_temp("alcp-rt", PROGRAM);
    let (a, b) = (temp_artifact_path("rt-a"), temp_artifact_path("rt-b"));
    let (merged, direct) = (temp_artifact_path("rt-m"), temp_artifact_path("rt-d"));

    for (input, path) in [("1,2,3", &a), ("4,5", &b)] {
        let out = bin()
            .args(["profile", "save"])
            .arg(&src)
            .args(["--input", input, "-o"])
            .arg(path)
            .output()
            .expect("spawns");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("wrote profile artifact"), "{stdout}");
    }
    let out = bin()
        .args(["profile", "merge"])
        .args([&a, &b])
        .arg("-o")
        .arg(&merged)
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin()
        .args(["profile", "save"])
        .arg(&src)
        .args(["--input", "1,2,3", "--input", "4,5", "-o"])
        .arg(&direct)
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&merged).expect("merged artifact"),
        std::fs::read(&direct).expect("direct artifact"),
        "merged artifact bytes differ from the direct aggregate's"
    );

    // Both query identically (the report never prints the file path), and
    // the report names the hot construct.
    let query = |p: &std::path::PathBuf| {
        let out = bin()
            .args(["profile", "query"])
            .arg(p)
            .args(["--analysis", "profile"])
            .output()
            .expect("spawns");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let report = query(&merged);
    assert_eq!(report, query(&direct), "query outputs diverge");
    assert!(report.contains("profile artifact:"), "{report}");
    assert!(report.contains("Method main"), "{report}");

    for p in [a, b, merged, direct] {
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_file(src);
}

/// The `--profile-out` rider writes the same bytes whether it rides a
/// live `run`, a `record`, or a `replay` of the recorded trace; a full
/// `profile save` of that trace additionally embeds the task summary but
/// queries identically for the profile analysis.
#[test]
fn profile_out_rider_is_identical_across_run_record_and_replay() {
    let src = write_temp("alcp-rider", PROGRAM);
    let trace = temp_trace_path("alcp-rider");
    let via_run = temp_artifact_path("rider-run");
    let via_record = temp_artifact_path("rider-record");
    let via_replay = temp_artifact_path("rider-replay");
    let via_save = temp_artifact_path("rider-save");

    let run = bin()
        .args(["run"])
        .arg(&src)
        .arg("--profile-out")
        .arg(&via_run)
        .output()
        .expect("spawns");
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let rec = bin()
        .args(["record"])
        .arg(&src)
        .arg("-o")
        .arg(&trace)
        .arg("--profile-out")
        .arg(&via_record)
        .output()
        .expect("spawns");
    assert!(
        rec.status.success(),
        "{}",
        String::from_utf8_lossy(&rec.stderr)
    );
    let rep = bin()
        .args(["replay"])
        .arg(&trace)
        .args(["--analysis", "stats", "--profile-out"])
        .arg(&via_replay)
        .output()
        .expect("spawns");
    assert!(
        rep.status.success(),
        "{}",
        String::from_utf8_lossy(&rep.stderr)
    );
    let reference = std::fs::read(&via_run).expect("run artifact");
    assert_eq!(
        std::fs::read(&via_record).expect("record artifact"),
        reference,
        "record rider diverges from run rider"
    );
    assert_eq!(
        std::fs::read(&via_replay).expect("replay artifact"),
        reference,
        "replay rider diverges from run rider"
    );

    // A full save of the trace also embeds the task summary for offline
    // advise (the rider deliberately skips that extra pass)...
    let save = bin()
        .args(["profile", "save"])
        .arg(&trace)
        .arg("-o")
        .arg(&via_save)
        .output()
        .expect("spawns");
    assert!(
        save.status.success(),
        "{}",
        String::from_utf8_lossy(&save.stderr)
    );
    let stats = bin()
        .args(["profile", "query"])
        .arg(&via_save)
        .args(["--analysis", "stats"])
        .output()
        .expect("spawns");
    let stats_out = String::from_utf8_lossy(&stats.stdout);
    assert!(stats_out.contains("task summary: yes"), "{stats_out}");
    let advise = bin()
        .args(["profile", "query"])
        .arg(&via_save)
        .args(["--analysis", "advise"])
        .output()
        .expect("spawns");
    let advise_out = String::from_utf8_lossy(&advise.stdout);
    assert!(advise_out.contains("embedded task summary"), "{advise_out}");
    assert!(advise_out.contains("speedup"), "{advise_out}");

    // ...while the profile analysis reads identically from either.
    let query_profile = |p: &std::path::PathBuf| {
        let out = bin()
            .args(["profile", "query"])
            .arg(p)
            .output()
            .expect("spawns");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    assert_eq!(
        query_profile(&via_replay),
        query_profile(&via_save),
        "rider and full save render different profile reports"
    );

    for p in [via_run, via_record, via_replay, via_save] {
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_file(trace);
    let _ = std::fs::remove_file(src);
}

#[test]
fn profile_query_rejects_unknown_analysis_and_corrupt_artifacts() {
    let src = write_temp("alcp-err", PROGRAM);
    let artifact = temp_artifact_path("err");
    let out = bin()
        .args(["profile", "save"])
        .arg(&src)
        .arg("-o")
        .arg(&artifact)
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Unknown analysis name: typed error naming the value and the menu.
    let out = bin()
        .args(["profile", "query"])
        .arg(&artifact)
        .args(["--analysis", "bogus"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown analysis `bogus`"), "{stderr}");
    assert!(stderr.contains("profile, advise or stats"), "{stderr}");

    // Truncation: typed decode error, not a panic.
    let bytes = std::fs::read(&artifact).expect("artifact");
    std::fs::write(&artifact, &bytes[..bytes.len() / 2]).expect("truncate");
    let out = bin()
        .args(["profile", "query"])
        .arg(&artifact)
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("truncated"), "{stderr}");

    // A trace is not a profile artifact: the magic is named.
    let trace = temp_trace_path("alcp-err");
    let rec = bin()
        .args(["record"])
        .arg(&src)
        .arg("-o")
        .arg(&trace)
        .output()
        .expect("spawns");
    assert!(rec.status.success());
    let out = bin()
        .args(["profile", "query"])
        .arg(&trace)
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad magic"), "{stderr}");

    let _ = std::fs::remove_file(artifact);
    let _ = std::fs::remove_file(trace);
    let _ = std::fs::remove_file(src);
}

/// `--metrics-out` and `--profile-out` into a missing directory fail with
/// a typed `cannot create` error naming the path, not an unwrap.
#[test]
fn sink_paths_into_missing_directories_are_typed_errors() {
    let src = write_temp("badsink", PROGRAM);
    let cases: [&[&str]; 2] = [
        &["--metrics", "text", "--metrics-out", "/no/such/dir/m.txt"],
        &["--profile-out", "/no/such/dir/p.alcp"],
    ];
    for extra in cases {
        let out = bin()
            .args(["run"])
            .arg(&src)
            .args(extra)
            .output()
            .expect("spawns");
        assert!(!out.status.success(), "{extra:?} unexpectedly succeeded");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("cannot create /no/such/dir/"),
            "{extra:?}: {stderr}"
        );
    }
    let _ = std::fs::remove_file(src);
}

#[test]
fn workloads_json_reports_profile_bytes() {
    let out = bin()
        .args(["workloads", "--json"])
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"profile_bytes\":"), "{stdout}");
}
