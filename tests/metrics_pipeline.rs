//! Metrics parity across execution modes: the observability layer must
//! *describe* the pipeline without perturbing it, so for every bundled
//! workload the counter totals have to line up between live instrumentation,
//! sequential (streaming) replay and sharded `--jobs 4` replay — the same
//! three-way determinism guarantee `tests/par_replay.rs` pins for the
//! profiles themselves, lifted to the metrics. Also pins that a fully
//! populated report survives the JSON round trip bit-for-bit.

use alchemist_core::{
    profile_batches_par_spec, profile_batches_par_with, ProfileConfig, ShardSpec, ShardTuning,
    PAGE_SHIFT, SHARD_FLUSH_EVENTS,
};
use alchemist_obs::{Counter, Metrics, MetricsReport, Stage, SCHEMA_VERSION};
use alchemist_trace::{decode_batches_par_with, TraceReader, TraceWriter};
use alchemist_vm::{run_with_metrics, Event, EventBatch, Module, DEFAULT_BATCH_EVENTS};
use alchemist_workloads::Scale;
use std::sync::Arc;

/// Records one workload run into an in-memory trace with live metrics
/// attached to both the interpreter and the writer.
fn record_live(w: &alchemist_workloads::Workload) -> (Module, Vec<u8>, u64, Arc<Metrics>) {
    let module = w.module();
    let live = Arc::new(Metrics::new());
    let mut writer = if module.uses_threads() {
        TraceWriter::new_v2(Vec::new(), Some(w.source))
    } else {
        TraceWriter::new(Vec::new(), Some(w.source))
    }
    .expect("header")
    .with_metrics(Arc::clone(&live));
    let outcome = run_with_metrics(
        &module,
        &w.exec_config(Scale::Tiny),
        &mut writer,
        Some(&live),
    )
    .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
    let (bytes, _) = writer.finish(outcome.steps).expect("finish");
    (module, bytes, outcome.steps, live)
}

#[test]
fn counter_totals_agree_across_live_seq_and_par_replay() {
    for w in alchemist_workloads::all() {
        let (module, bytes, steps, live) = record_live(w);

        // Sequential streaming replay: reader-side decode counters, with
        // the profile produced by the ordinary jobs=1 batched path.
        let seq = Arc::new(Metrics::new());
        let mut reader = TraceReader::new(bytes.as_slice())
            .expect("header")
            .with_metrics(Arc::clone(&seq));
        let mut rec = alchemist_vm::RecordingSink::default();
        reader
            .replay_batched_into(&mut rec, DEFAULT_BATCH_EVENTS)
            .expect("seq replay");
        let seq_batches = vec![alchemist_vm::EventBatch::from_events(&rec.events)];
        let (seq_profile, _, _) = profile_batches_par_with(
            &module,
            &seq_batches,
            steps,
            ProfileConfig::default(),
            1,
            Some(&seq),
        )
        .expect("no shard panic");

        // Sharded replay: chunk-parallel decode, 4 address shards.
        let par = Arc::new(Metrics::new());
        let (batches, summary) = decode_batches_par_with(
            TraceReader::new(bytes.as_slice()).expect("header"),
            4,
            Some(&par),
        )
        .expect("par decode");
        let (par_profile, _, _) = profile_batches_par_with(
            &module,
            &batches,
            summary.total_steps,
            ProfileConfig::default(),
            4,
            Some(&par),
        )
        .expect("no shard panic");
        assert_eq!(par_profile, seq_profile, "{}: profiles diverge", w.name);

        // Events: what the VM emitted is what the writer encoded is what
        // both replay modes decoded and profiled.
        let events = live.get(Counter::VmEvents);
        assert!(events > 0, "{}", w.name);
        for (label, got) in [
            (
                "trace.events_written",
                live.get(Counter::TraceEventsWritten),
            ),
            (
                "seq trace.events_decoded",
                seq.get(Counter::TraceEventsDecoded),
            ),
            ("seq profile.events", seq.get(Counter::ProfileEvents)),
            (
                "par trace.events_decoded",
                par.get(Counter::TraceEventsDecoded),
            ),
            ("par profile.events", par.get(Counter::ProfileEvents)),
        ] {
            assert_eq!(got, events, "{}: {label}", w.name);
        }

        // Chunks: every chunk written is decoded exactly once per replay.
        let chunks = live.get(Counter::TraceChunksWritten);
        assert!(chunks > 0, "{}", w.name);
        assert_eq!(seq.get(Counter::TraceChunksDecoded), chunks, "{}", w.name);
        assert_eq!(par.get(Counter::TraceChunksDecoded), chunks, "{}", w.name);

        // Dependences: the merged shard profile detects exactly the
        // sequential run's dependences, and the counter reflects it.
        let deps = seq_profile.intra_thread_deps + seq_profile.cross_thread_deps;
        assert_eq!(seq.get(Counter::ProfileDeps), deps, "{}", w.name);
        assert_eq!(par.get(Counter::ProfileDeps), deps, "{}", w.name);

        // Shard rows: 4 rows whose memory events partition the stream's.
        let shards = par.shards();
        assert_eq!(shards.len(), 4, "{}", w.name);
        let mem_total: u64 = shards.iter().map(|s| s.mem_events).sum();
        let seq_mem: u64 = seq_batches[0]
            .tags()
            .iter()
            .filter(|t| t.is_memory())
            .count() as u64;
        assert_eq!(mem_total, seq_mem, "{}: memory rows partition", w.name);

        // Threaded workloads surface scheduler rows; the rest stay on the
        // main thread only.
        let sched = live.sched();
        if module.uses_threads() {
            assert!(sched.len() > 1, "{}: expected multiple tids", w.name);
        } else {
            assert_eq!(sched.len(), 1, "{}", w.name);
            assert_eq!(sched[0].0, 0, "{}", w.name);
        }
    }
}

/// Four counter+array pairs laid out so pair `k` fills shadow page `k`
/// exactly (`ck` at word `k * 4096`, its array filling the rest of the
/// page), with every loop driven by the global counter itself — no frame
/// locals, so no hot off-page words to skew the balance. Each page sees
/// identical traffic, which is exactly the stream the page-granular
/// partition is supposed to keep.
const PAGE_BALANCED: &str = "
int c0; int a0[4095];
int c1; int a1[4095];
int c2; int a2[4095];
int c3; int a3[4095];
int main() {
    for (c0 = 0; c0 < 1024; c0++) a0[c0 & 1023] = c0;
    for (c1 = 0; c1 < 1024; c1++) a1[c1 & 1023] = c1;
    for (c2 = 0; c2 < 1024; c2++) a2[c2 & 1023] = c2;
    for (c3 = 0; c3 < 1024; c3++) a3[c3 & 1023] = c3;
    return c0 + c1 + c2 + c3;
}
";

/// The page-owning partition's reason to exist: each shadow page faults in
/// on exactly **one** shard, so the per-shard `pages_allocated` rows sum
/// to the sequential page count instead of the old `addr % jobs` scheme's
/// jobs-times-everything.
#[test]
fn page_partition_does_not_duplicate_shadow_pages() {
    let module = alchemist_vm::compile_source(PAGE_BALANCED).expect("compiles");
    let mut rec = alchemist_vm::RecordingSink::default();
    let out =
        alchemist_vm::run(&module, &alchemist_vm::ExecConfig::default(), &mut rec).expect("runs");
    let batches = vec![EventBatch::from_events(&rec.events)];

    let spec = ShardSpec::for_batches(&batches, 4);
    assert_eq!(
        spec.shift(),
        PAGE_SHIFT,
        "balanced per-page traffic must keep the page-granular partition"
    );

    let seq_pages: std::collections::HashSet<u32> = rec
        .events
        .iter()
        .filter_map(|e| match *e {
            Event::Read { addr, .. } | Event::Write { addr, .. } => Some(addr >> PAGE_SHIFT),
            _ => None,
        })
        .collect();
    assert_eq!(seq_pages.len(), 4, "the program touches its four pages");

    let m = Metrics::new();
    let (par, _, _) = profile_batches_par_spec(
        &module,
        &batches,
        out.steps,
        ProfileConfig::default(),
        spec,
        ShardTuning::default(),
        Some(&m),
    )
    .expect("no shard panic");
    let (seq, _, _) = profile_batches_par_with(
        &module,
        &batches,
        out.steps,
        ProfileConfig::default(),
        1,
        None,
    )
    .expect("no shard panic");
    assert_eq!(par, seq, "parity is not negotiable");

    let shards = m.shards();
    assert_eq!(shards.len(), 4);
    let pages_sum: u64 = shards.iter().map(|s| s.pages_allocated).sum();
    assert_eq!(
        pages_sum,
        seq_pages.len() as u64,
        "page-owning shards fault each shadow page exactly once (no jobs-fold duplication)"
    );
    for s in &shards {
        assert_eq!(
            s.pages_allocated, 1,
            "shard {} owns exactly one page",
            s.shard
        );
    }
}

/// The handoff property the pooled sender guarantees on any machine: rows
/// coalesce into sub-batches around `SHARD_FLUSH_EVENTS` before crossing
/// the channel, so the send count stays near `rows / flush` instead of one
/// send per (input batch, shard) pair. On 2+ CPUs the wait rows must also
/// show the workers spending more time profiling than starving on the
/// channel — the "sender is no longer the bottleneck" criterion; a lone
/// CPU interleaves everything, making wait times scheduling artifacts, so
/// that half is gated.
#[test]
fn handoff_sends_fat_sub_batches_and_workers_stay_busy() {
    let w = alchemist_workloads::by_name("ogg").expect("bundled");
    let (module, bytes, steps, _) = record_live(w);
    let m = Metrics::new();
    let (batches, summary) =
        decode_batches_par_with(TraceReader::new(bytes.as_slice()).expect("header"), 4, None)
            .expect("decode");
    assert_eq!(summary.total_steps, steps);
    let spec = ShardSpec::for_batches(&batches, 4);
    let (_, _, _) = profile_batches_par_spec(
        &module,
        &batches,
        summary.total_steps,
        ProfileConfig::default(),
        spec,
        ShardTuning::default(),
        Some(&m),
    )
    .expect("no shard panic");

    let jobs = 4u64;
    let total: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let mem: u64 = batches
        .iter()
        .flat_map(|b| b.tags())
        .filter(|t| t.is_memory())
        .count() as u64;
    // Control events are broadcast to every shard; memory events are owned.
    let delivered = mem + jobs * (total - mem);
    let sent = m.get(Counter::ShardSubBatchesSent);
    assert!(sent >= 1, "the sender sent something");
    assert!(
        sent <= delivered / SHARD_FLUSH_EVENTS as u64 + jobs,
        "sub-batches must flush at >= {SHARD_FLUSH_EVENTS} rows: \
         {sent} sends for {delivered} delivered rows"
    );
    assert!(
        delivered / sent >= SHARD_FLUSH_EVENTS as u64 / 2,
        "average sub-batch payload collapsed: {} rows/send",
        delivered / sent
    );

    if std::thread::available_parallelism().map_or(1, |n| n.get()) >= 2 {
        let shards = m.shards();
        let recv_wait: u64 = shards.iter().map(|s| s.recv_wait_ns).sum();
        let send_wait: u64 = shards.iter().map(|s| s.send_wait_ns).sum();
        let busy: u64 = shards.iter().map(|s| s.busy_ns).sum();
        assert!(
            recv_wait < busy,
            "workers starve on the handoff: {recv_wait} ns waiting vs {busy} ns busy"
        );
        assert!(
            send_wait + recv_wait < busy,
            "the handoff dominates the pipeline: {send_wait}+{recv_wait} ns \
             waiting vs {busy} ns busy"
        );
    }
}

#[test]
fn populated_report_round_trips_through_json() {
    // Build a report off a real sharded replay so every section is
    // populated, then require a lossless (and byte-identical) round trip.
    let w = &alchemist_workloads::all()[0];
    let (module, bytes, steps, _) = record_live(w);
    let m = Metrics::new();
    let (batches, _) = decode_batches_par_with(
        TraceReader::new(bytes.as_slice()).expect("header"),
        4,
        Some(&m),
    )
    .expect("decode");
    profile_batches_par_with(
        &module,
        &batches,
        steps,
        ProfileConfig::default(),
        4,
        Some(&m),
    )
    .expect("no shard panic");
    let report = m.report("replay");
    assert_eq!(report.schema_version, SCHEMA_VERSION);
    assert!(report.shards.len() == 4);
    assert!(m.stage(Stage::Decode).0 > 0);

    let json = report.to_json();
    let back = MetricsReport::from_json(&json).expect("parse");
    assert_eq!(back, report);
    assert_eq!(back.to_json(), json, "re-serialization is byte-identical");
}
