//! Metrics parity across execution modes: the observability layer must
//! *describe* the pipeline without perturbing it, so for every bundled
//! workload the counter totals have to line up between live instrumentation,
//! sequential (streaming) replay and sharded `--jobs 4` replay — the same
//! three-way determinism guarantee `tests/par_replay.rs` pins for the
//! profiles themselves, lifted to the metrics. Also pins that a fully
//! populated report survives the JSON round trip bit-for-bit.

use alchemist_core::{profile_batches_par_with, ProfileConfig};
use alchemist_obs::{Counter, Metrics, MetricsReport, Stage, SCHEMA_VERSION};
use alchemist_trace::{decode_batches_par_with, TraceReader, TraceWriter};
use alchemist_vm::{run_with_metrics, Module, DEFAULT_BATCH_EVENTS};
use alchemist_workloads::Scale;
use std::sync::Arc;

/// Records one workload run into an in-memory trace with live metrics
/// attached to both the interpreter and the writer.
fn record_live(w: &alchemist_workloads::Workload) -> (Module, Vec<u8>, u64, Arc<Metrics>) {
    let module = w.module();
    let live = Arc::new(Metrics::new());
    let mut writer = if module.uses_threads() {
        TraceWriter::new_v2(Vec::new(), Some(w.source))
    } else {
        TraceWriter::new(Vec::new(), Some(w.source))
    }
    .expect("header")
    .with_metrics(Arc::clone(&live));
    let outcome = run_with_metrics(
        &module,
        &w.exec_config(Scale::Tiny),
        &mut writer,
        Some(&live),
    )
    .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
    let (bytes, _) = writer.finish(outcome.steps).expect("finish");
    (module, bytes, outcome.steps, live)
}

#[test]
fn counter_totals_agree_across_live_seq_and_par_replay() {
    for w in alchemist_workloads::all() {
        let (module, bytes, steps, live) = record_live(w);

        // Sequential streaming replay: reader-side decode counters, with
        // the profile produced by the ordinary jobs=1 batched path.
        let seq = Arc::new(Metrics::new());
        let mut reader = TraceReader::new(bytes.as_slice())
            .expect("header")
            .with_metrics(Arc::clone(&seq));
        let mut rec = alchemist_vm::RecordingSink::default();
        reader
            .replay_batched_into(&mut rec, DEFAULT_BATCH_EVENTS)
            .expect("seq replay");
        let seq_batches = vec![alchemist_vm::EventBatch::from_events(&rec.events)];
        let (seq_profile, _, _) = profile_batches_par_with(
            &module,
            &seq_batches,
            steps,
            ProfileConfig::default(),
            1,
            Some(&seq),
        );

        // Sharded replay: chunk-parallel decode, 4 address shards.
        let par = Arc::new(Metrics::new());
        let (batches, summary) = decode_batches_par_with(
            TraceReader::new(bytes.as_slice()).expect("header"),
            4,
            Some(&par),
        )
        .expect("par decode");
        let (par_profile, _, _) = profile_batches_par_with(
            &module,
            &batches,
            summary.total_steps,
            ProfileConfig::default(),
            4,
            Some(&par),
        );
        assert_eq!(par_profile, seq_profile, "{}: profiles diverge", w.name);

        // Events: what the VM emitted is what the writer encoded is what
        // both replay modes decoded and profiled.
        let events = live.get(Counter::VmEvents);
        assert!(events > 0, "{}", w.name);
        for (label, got) in [
            (
                "trace.events_written",
                live.get(Counter::TraceEventsWritten),
            ),
            (
                "seq trace.events_decoded",
                seq.get(Counter::TraceEventsDecoded),
            ),
            ("seq profile.events", seq.get(Counter::ProfileEvents)),
            (
                "par trace.events_decoded",
                par.get(Counter::TraceEventsDecoded),
            ),
            ("par profile.events", par.get(Counter::ProfileEvents)),
        ] {
            assert_eq!(got, events, "{}: {label}", w.name);
        }

        // Chunks: every chunk written is decoded exactly once per replay.
        let chunks = live.get(Counter::TraceChunksWritten);
        assert!(chunks > 0, "{}", w.name);
        assert_eq!(seq.get(Counter::TraceChunksDecoded), chunks, "{}", w.name);
        assert_eq!(par.get(Counter::TraceChunksDecoded), chunks, "{}", w.name);

        // Dependences: the merged shard profile detects exactly the
        // sequential run's dependences, and the counter reflects it.
        let deps = seq_profile.intra_thread_deps + seq_profile.cross_thread_deps;
        assert_eq!(seq.get(Counter::ProfileDeps), deps, "{}", w.name);
        assert_eq!(par.get(Counter::ProfileDeps), deps, "{}", w.name);

        // Shard rows: 4 rows whose memory events partition the stream's.
        let shards = par.shards();
        assert_eq!(shards.len(), 4, "{}", w.name);
        let mem_total: u64 = shards.iter().map(|s| s.mem_events).sum();
        let seq_mem: u64 = seq_batches[0]
            .tags()
            .iter()
            .filter(|t| t.is_memory())
            .count() as u64;
        assert_eq!(mem_total, seq_mem, "{}: memory rows partition", w.name);

        // Threaded workloads surface scheduler rows; the rest stay on the
        // main thread only.
        let sched = live.sched();
        if module.uses_threads() {
            assert!(sched.len() > 1, "{}: expected multiple tids", w.name);
        } else {
            assert_eq!(sched.len(), 1, "{}", w.name);
            assert_eq!(sched[0].0, 0, "{}", w.name);
        }
    }
}

#[test]
fn populated_report_round_trips_through_json() {
    // Build a report off a real sharded replay so every section is
    // populated, then require a lossless (and byte-identical) round trip.
    let w = &alchemist_workloads::all()[0];
    let (module, bytes, steps, _) = record_live(w);
    let m = Metrics::new();
    let (batches, _) = decode_batches_par_with(
        TraceReader::new(bytes.as_slice()).expect("header"),
        4,
        Some(&m),
    )
    .expect("decode");
    profile_batches_par_with(
        &module,
        &batches,
        steps,
        ProfileConfig::default(),
        4,
        Some(&m),
    );
    let report = m.report("replay");
    assert_eq!(report.schema_version, SCHEMA_VERSION);
    assert!(report.shards.len() == 4);
    assert!(m.stage(Stage::Decode).0 > 0);

    let json = report.to_json();
    let back = MetricsReport::from_json(&json).expect("parse");
    assert_eq!(back, report);
    assert_eq!(back.to_json(), json, "re-serialization is byte-identical");
}
