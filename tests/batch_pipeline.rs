//! Batched pipeline parity: for every bundled workload, the batched paths
//! — batched live profiling (`ExecConfig::batch_events`), batched
//! recording through `TraceWriter::on_batch`, batched sequential replay
//! (`replay_batched_into`) and batched sharded replay
//! (`decode_batches_par` + `profile_batches_par`) — must produce
//! byte-identical `.alct` files and `DepProfile`s **equal** (`==`) to the
//! per-event pipeline, and likewise for batched task extraction. This is
//! the determinism guarantee behind the `--batch-size` flag, enforced in
//! CI in release mode alongside the sharded-replay parity gate.

use alchemist_core::{
    profile_batches_par, profile_events, profile_module, shard_batch_counts, shard_event_counts,
    AlchemistProfiler, ProfileConfig,
};
use alchemist_parsim::{extract_tasks, extract_tasks_from_batches_par, ExtractConfig};
use alchemist_trace::{decode_batches_par, TraceReader, TraceWriter};
use alchemist_vm::{Event, EventBatch, ExecConfig, Module};
use alchemist_workloads::Scale;

/// Records one workload run into an in-memory trace, with the interpreter
/// batching events `batch_events` at a time (0 = per-event dispatch).
fn record_with(w: &alchemist_workloads::Workload, batch_events: usize) -> (Module, Vec<u8>, u64) {
    let module = w.module();
    let cfg = ExecConfig {
        batch_events,
        ..w.exec_config(Scale::Tiny)
    };
    // Threaded workloads carry non-main tids, which only the v2 format
    // encodes; single-threaded ones stay on v1 (pinned byte-identical).
    let mut writer = if module.uses_threads() {
        TraceWriter::new_v2(Vec::new(), Some(w.source))
    } else {
        TraceWriter::new(Vec::new(), Some(w.source))
    }
    .expect("header");
    let outcome = alchemist_vm::run(&module, &cfg, &mut writer)
        .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
    let (bytes, _) = writer.finish(outcome.steps).expect("finish");
    (module, bytes, outcome.steps)
}

#[test]
fn batched_recording_is_byte_identical_for_every_workload() {
    for w in alchemist_workloads::all() {
        let (_, per_event, _) = record_with(w, 0);
        for batch_events in [2usize, 1021, 4096] {
            let (_, batched, _) = record_with(w, batch_events);
            assert_eq!(
                batched, per_event,
                "{}: .alct bytes diverge at batch_events={batch_events}",
                w.name
            );
        }
    }
}

#[test]
fn batched_live_profile_equals_per_event_for_every_workload() {
    for w in alchemist_workloads::all() {
        let module = w.module();
        let (live, ..) = profile_module(
            &module,
            &w.exec_config(Scale::Tiny),
            ProfileConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
        for batch_events in [3usize, 4096] {
            let cfg = ExecConfig {
                batch_events,
                ..w.exec_config(Scale::Tiny)
            };
            let (batched, ..) = profile_module(&module, &cfg, ProfileConfig::default())
                .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
            assert_eq!(
                batched, live,
                "{}: batched live profile diverges at batch_events={batch_events}",
                w.name
            );
        }
    }
}

#[test]
fn batched_replay_paths_equal_per_event_for_every_workload() {
    for w in alchemist_workloads::all() {
        let (module, bytes, steps) = record_with(w, 4096);
        let (live, ..) = profile_module(
            &module,
            &w.exec_config(Scale::Tiny),
            ProfileConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));

        // Per-event replay baseline.
        let events: Vec<Event> = TraceReader::new(bytes.as_slice())
            .expect("header")
            .map(|e| e.expect("decode"))
            .collect();
        let (per_event, ..) = profile_events(
            &module,
            events.iter().copied(),
            steps,
            ProfileConfig::default(),
        );
        assert_eq!(per_event, live, "{}: per-event replay diverges", w.name);

        // Batched sequential replay: stream the reader into one profiler
        // via on_batch.
        for batch_size in [64usize, 4096] {
            let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
            let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
            let summary = reader
                .replay_batched_into(&mut prof, batch_size)
                .expect("batched replay");
            assert_eq!(summary.events, events.len() as u64, "{}", w.name);
            let profile = prof.into_profile(summary.total_steps);
            assert_eq!(
                profile, live,
                "{}: batched sequential replay diverges at batch_size={batch_size}",
                w.name
            );
        }

        // Batched sharded replay: chunk-parallel decode into batches, then
        // single-pass partitioning across worker shards.
        let (batches, summary) =
            decode_batches_par(TraceReader::new(bytes.as_slice()).expect("header"), 4)
                .expect("batch decode");
        let flat: Vec<Event> = batches.iter().flat_map(|b| b.iter()).collect();
        assert_eq!(flat, events, "{}: batch decode diverges", w.name);
        assert_eq!(summary.total_steps, steps, "{}", w.name);
        for jobs in [1usize, 2, 4, 7] {
            let (par, ..) =
                profile_batches_par(&module, &batches, steps, ProfileConfig::default(), jobs)
                    .expect("no shard panic");
            assert_eq!(
                par, live,
                "{}: batched sharded replay (jobs={jobs}) diverges",
                w.name
            );
        }
        // The batched shard split matches the per-event one exactly.
        assert_eq!(
            shard_batch_counts(&batches, 4),
            shard_event_counts(&events, 4),
            "{}",
            w.name
        );
    }
}

#[test]
fn batched_task_extraction_equals_live_for_parallel_workloads() {
    for w in alchemist_workloads::all() {
        let Some(spec) = &w.parallel else { continue };
        let (module, bytes, _) = record_with(w, 4096);
        let mut cfg = ExtractConfig::default();
        for head in w.resolve_targets(&module) {
            cfg = cfg.mark(head);
        }
        for v in spec.privatized {
            cfg = cfg.privatize(v);
        }
        let live = extract_tasks(&module, &w.exec_config(Scale::Tiny), cfg.clone())
            .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
        let (batches, summary) =
            decode_batches_par(TraceReader::new(bytes.as_slice()).expect("header"), 4)
                .expect("batch decode");
        for jobs in [1usize, 2, 4] {
            let par = extract_tasks_from_batches_par(
                &module,
                cfg.clone(),
                &batches,
                summary.total_steps,
                jobs,
            )
            .expect("no shard panic");
            assert_eq!(
                par, live,
                "{}: batched extraction (jobs={jobs}) diverges",
                w.name
            );
        }
    }
}

#[test]
fn rebatching_through_a_batching_sink_preserves_the_profile() {
    // Pathological granularity: replay delivered in large batches, then
    // re-batched down to tiny ones by a BatchingSink in front of the
    // profiler — the profile must not care.
    use alchemist_vm::BatchingSink;
    let w = alchemist_workloads::by_name("gzip-1.3.5").expect("workload");
    let (module, bytes, _) = record_with(w, 0);
    let (live, ..) = profile_module(
        &module,
        &w.exec_config(Scale::Tiny),
        ProfileConfig::default(),
    )
    .expect("runs");
    let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
    let mut rebatcher = BatchingSink::new(&mut prof, 5);
    let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
    let mut batch = EventBatch::new();
    let mut total = 0u64;
    while reader.read_batch(&mut batch, 911).expect("decode") {
        total += batch.len() as u64;
        batch.dispatch_into(&mut rebatcher);
    }
    rebatcher.flush();
    drop(rebatcher);
    assert!(total > 0);
    let steps = reader.total_steps().expect("footer");
    assert_eq!(prof.into_profile(steps), live);
}
