//! Sharded parallel replay parity: for every bundled workload, replaying a
//! recorded trace through N address shards on worker threads must produce a
//! `DepProfile` **equal** (`==`) to both the sequential replay and live
//! instrumentation — and likewise for sharded task extraction. This is the
//! determinism guarantee behind `replay --jobs N`, enforced in CI in
//! release mode.

use alchemist_core::{
    partition_batch, profile_batches_par, profile_events, profile_events_par, profile_module,
    shard_event_counts, ProfileConfig, ShardSpec, PAGE_SHIFT,
};
use alchemist_parsim::{extract_tasks, extract_tasks_from_events_par, ExtractConfig};
use alchemist_trace::{decode_batches_par, decode_events_par, TraceReader, TraceWriter};
use alchemist_vm::{Event, Module};
use alchemist_workloads::Scale;

/// Records one workload run at `scale` into an in-memory trace.
fn record_at(w: &alchemist_workloads::Workload, scale: Scale) -> (Module, Vec<u8>, u64) {
    let module = w.module();
    // Threaded workloads need the v2 tid column; the paper's eight stay
    // on v1 so their byte-level format is untouched.
    let mut writer = if module.uses_threads() {
        TraceWriter::new_v2(Vec::new(), Some(w.source))
    } else {
        TraceWriter::new(Vec::new(), Some(w.source))
    }
    .expect("header");
    let outcome = alchemist_vm::run(&module, &w.exec_config(scale), &mut writer)
        .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
    let (bytes, _) = writer.finish(outcome.steps).expect("finish");
    (module, bytes, outcome.steps)
}

/// Records one workload run into an in-memory trace.
fn record(w: &alchemist_workloads::Workload) -> (Module, Vec<u8>, u64) {
    record_at(w, Scale::Tiny)
}

#[test]
fn parallel_replay_profile_equals_sequential_and_live_for_every_workload() {
    for w in alchemist_workloads::all() {
        let (module, bytes, steps) = record(w);
        // Live: instrument the interpreter directly.
        let (live, ..) = profile_module(
            &module,
            &w.exec_config(Scale::Tiny),
            ProfileConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
        // Chunk-parallel decode must reproduce the recorded stream.
        let reader = TraceReader::new(bytes.as_slice()).expect("header");
        let expected_version = if module.uses_threads() { 2 } else { 1 };
        assert_eq!(
            reader.version(),
            expected_version,
            "{}: wrong .alct format version",
            w.name
        );
        let seq_events: Vec<Event> = reader.map(|e| e.expect("decode")).collect();
        let (events, summary) =
            decode_events_par(TraceReader::new(bytes.as_slice()).expect("header"), 4)
                .expect("parallel decode");
        assert_eq!(events, seq_events, "{}: parallel decode diverges", w.name);
        assert_eq!(summary.total_steps, steps, "{}", w.name);
        // Sequential replay equals live.
        let (seq, ..) = profile_events(
            &module,
            events.iter().copied(),
            steps,
            ProfileConfig::default(),
        );
        assert_eq!(
            seq, live,
            "{}: sequential replay diverges from live",
            w.name
        );
        // Sharded replay equals both, for several worker counts.
        for jobs in [2usize, 4, 7] {
            let (par, ..) =
                profile_events_par(&module, &events, steps, ProfileConfig::default(), jobs)
                    .expect("no shard panic");
            assert_eq!(
                par, live,
                "{}: parallel replay (jobs={jobs}) diverges from live",
                w.name
            );
        }
        // The shard split covers every memory event exactly once.
        let counts = shard_event_counts(&events, 4);
        let mem: u64 = events
            .iter()
            .filter(|e| matches!(e, Event::Read { .. } | Event::Write { .. }))
            .count() as u64;
        assert_eq!(counts.iter().sum::<u64>(), mem, "{}", w.name);
    }
}

/// The partition property behind merge determinism: a shard owns
/// **addresses** (whole block-cyclic blocks of them), so every memory
/// event on an address — the address's entire access stream, in recorded
/// order — lands in exactly one shard, and control events reach all of
/// them. This holds for the page-granular partition and for every finer
/// stride the balance ladder can fall back to.
#[test]
fn partition_routes_every_address_stream_to_exactly_one_shard() {
    for w in alchemist_workloads::all() {
        let (_, bytes, _) = record(w);
        let (batches, _) =
            decode_batches_par(TraceReader::new(bytes.as_slice()).expect("header"), 4)
                .expect("decode");
        let chosen = ShardSpec::for_batches(&batches, 4);
        let page_granular = ShardSpec::with_shift(4, PAGE_SHIFT);
        for spec in [chosen, page_granular] {
            let mut owner: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
            for batch in &batches {
                let shards = partition_batch(batch, spec);
                assert_eq!(shards.len(), 4, "{}", w.name);
                let controls: Vec<Event> = batch
                    .iter()
                    .filter(|e| !matches!(e, Event::Read { .. } | Event::Write { .. }))
                    .collect();
                let mut mem_total = 0;
                for (k, shard) in shards.iter().enumerate() {
                    let mut expected = Vec::new();
                    for ev in batch.iter() {
                        match ev {
                            Event::Read { addr, .. } | Event::Write { addr, .. } => {
                                let home = spec.shard_of(addr);
                                let prev = owner.insert(addr, home);
                                assert_eq!(
                                    prev.unwrap_or(home),
                                    home,
                                    "{}: address {addr} changed shards mid-stream",
                                    w.name
                                );
                                if home == k as u32 {
                                    expected.push(ev);
                                }
                            }
                            other => expected.push(other),
                        }
                    }
                    let got: Vec<Event> = shard.iter().collect();
                    assert_eq!(got, expected, "{}: shard {k} stream diverges", w.name);
                    mem_total += got
                        .iter()
                        .filter(|e| matches!(e, Event::Read { .. } | Event::Write { .. }))
                        .count();
                    // Control events broadcast: each shard holds all of them.
                    let shard_controls: Vec<Event> = got
                        .iter()
                        .copied()
                        .filter(|e| !matches!(e, Event::Read { .. } | Event::Write { .. }))
                        .collect();
                    assert_eq!(shard_controls, controls, "{}: shard {k}", w.name);
                }
                let batch_mem = batch
                    .iter()
                    .filter(|e| matches!(e, Event::Read { .. } | Event::Write { .. }))
                    .count();
                assert_eq!(
                    mem_total, batch_mem,
                    "{}: memory events lost or duplicated",
                    w.name
                );
            }
        }
    }
}

/// Parity must survive scaling: the partition chooser samples the stream
/// and may land on a different stride at a different size, and bigger
/// inputs shift frame locals and thread-stack pages around — none of
/// which may leak into the merged profile. Small keeps the whole-suite
/// sweep affordable; the Huge regime is covered by the perf harness.
#[test]
fn parity_holds_across_scales_and_job_counts() {
    for w in alchemist_workloads::all() {
        for scale in [Scale::Small, Scale::Default] {
            let (module, bytes, _) = record_at(w, scale);
            let (live, ..) =
                profile_module(&module, &w.exec_config(scale), ProfileConfig::default())
                    .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
            let (batches, summary) =
                decode_batches_par(TraceReader::new(bytes.as_slice()).expect("header"), 4)
                    .expect("decode");
            for jobs in [2usize, 3, 5] {
                let (par, _, _) = profile_batches_par(
                    &module,
                    &batches,
                    summary.total_steps,
                    ProfileConfig::default(),
                    jobs,
                )
                .expect("no shard panic");
                assert_eq!(
                    par,
                    live,
                    "{}: parallel replay (jobs={jobs}, scale={}) diverges from live",
                    w.name,
                    scale.name()
                );
            }
        }
    }
}

#[test]
fn parallel_task_extraction_equals_live_for_parallel_workloads() {
    for w in alchemist_workloads::all() {
        let Some(spec) = &w.parallel else { continue };
        let (module, bytes, _) = record(w);
        let mut cfg = ExtractConfig::default();
        for head in w.resolve_targets(&module) {
            cfg = cfg.mark(head);
        }
        for v in spec.privatized {
            cfg = cfg.privatize(v);
        }
        let live = extract_tasks(&module, &w.exec_config(Scale::Tiny), cfg.clone())
            .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
        let (events, summary) =
            decode_events_par(TraceReader::new(bytes.as_slice()).expect("header"), 4)
                .expect("parallel decode");
        for jobs in [2usize, 4] {
            let par = extract_tasks_from_events_par(
                &module,
                cfg.clone(),
                &events,
                summary.total_steps,
                jobs,
            )
            .expect("no shard panic");
            assert_eq!(
                par, live,
                "{}: sharded extraction (jobs={jobs}) diverges",
                w.name
            );
        }
    }
}
