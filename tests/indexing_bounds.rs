//! Regression guards for the generalized predicate rule (DESIGN.md §3.4):
//! control shapes whose construct regions extend past loop iterations —
//! compound loop conditions, `if (c) break` bodies — must not grow the
//! indexing stack with the iteration count.

use alchemist_core::{AlchemistProfiler, ProfileConfig};
use alchemist_vm::{compile_source, run, ExecConfig};

fn max_depth_of(src: &str) -> usize {
    let module = compile_source(src).expect("compiles");
    let mut prof = AlchemistProfiler::new(&module, ProfileConfig::default());
    run(&module, &ExecConfig::default(), &mut prof).expect("runs");
    prof.max_depth()
}

#[test]
fn compound_while_condition_keeps_depth_constant() {
    // while (a && b): the second operand's post-dominator is the loop
    // exit; the literal paper rules would push one unclosed instance per
    // iteration. 10 vs 10000 iterations must give the same depth.
    let prog = |n: u32| {
        format!(
            "int g; int main() {{ int i = 0; \
             while (i < {n} && g >= 0) {{ g += i & 3; i++; }} return g; }}"
        )
    };
    let small = max_depth_of(&prog(10));
    let large = max_depth_of(&prog(10_000));
    assert_eq!(small, large, "stack depth grew with iterations");
    assert!(large < 8, "depth {large} is not construct-structured");
}

#[test]
fn break_guards_keep_depth_constant() {
    let prog = |n: u32| {
        format!(
            "int g; int main() {{ int i = 0; \
             while (1) {{ \
                 if (i >= {n}) break; \
                 g += i; \
                 if (g > 1000000000) break; \
                 i++; \
             }} return g; }}"
        )
    };
    let small = max_depth_of(&prog(10));
    let large = max_depth_of(&prog(10_000));
    assert_eq!(small, large);
}

#[test]
fn nested_compound_conditions_keep_depth_structural() {
    let prog = |n: u32| {
        format!(
            "int g; int main() {{ int i; int j; \
             for (i = 0; i < {n}; i++) \
                 for (j = 0; j < 4 && g < 1000000000; j++) \
                     if (g % 3 == 0 || j % 2 == 1) g += j; \
             return g; }}"
        )
    };
    let small = max_depth_of(&prog(5));
    let large = max_depth_of(&prog(2_000));
    assert_eq!(small, large);
    assert!(large < 12, "depth {large}");
}

#[test]
fn pool_stays_bounded_on_iteration_heavy_runs() {
    let src = "int g; int main() { int i; \
               for (i = 0; i < 50000; i++) g ^= i; return g; }";
    let module = compile_source(src).unwrap();
    let cfg = ProfileConfig {
        pool_capacity: 256,
        ..Default::default()
    };
    let mut prof = AlchemistProfiler::new(&module, cfg);
    run(&module, &ExecConfig::default(), &mut prof).expect("runs");
    let stats = prof.pool_stats();
    assert!(stats.allocated <= 256, "allocated {}", stats.allocated);
    assert_eq!(
        stats.overflow_growths, 0,
        "iteration churn must recycle, not grow"
    );
    assert!(stats.reused > 40_000, "reused only {}", stats.reused);
}
