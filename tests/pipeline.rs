//! End-to-end pipeline tests: source → profile → report → advisor →
//! schedule simulation, including failure paths and cross-run determinism.

mod common;

use alchemist::prelude::*;
use alchemist_parsim::TaskId;
use common::{gen_program, GenConfig};

#[test]
fn full_pipeline_on_a_pipeline_shaped_program() {
    // Producer/consumer stages over disjoint buffers: stage() instances
    // are spawnable; the final reduce constrains the join.
    let src = "
        int staged[128];
        int total;
        void stage(int s) {
            int i;
            int acc = 0;
            for (i = 0; i < 32; i++) acc = (acc * 17 + s + i) & 65535;
            staged[s] = acc;
        }
        int main() {
            int s;
            for (s = 0; s < 16; s++) stage(s);
            for (s = 0; s < 16; s++) total += staged[s];
            return total;
        }";
    let outcome = profile_source(src, vec![]).expect("runs");
    let report = outcome.report();

    // 1. The advisor finds stage(). Like gzip's final flush_block, the
    //    LAST stage call conflicts with the reduce that follows right
    //    after it, so one violating RAW edge is expected ("few violating",
    //    as the paper puts it).
    let candidates = suggest_candidates(&report, &outcome.module, 0.02, 2);
    let stage = candidates
        .iter()
        .find(|c| c.label == "Method stage")
        .expect("stage suggested");

    // 2. Simulation: near-linear on 4 threads (independent tasks, the
    //    consuming loop joins each producer long after it finished).
    let mut cfg = ExtractConfig::default().mark(stage.head);
    for v in &stage.privatize {
        cfg = cfg.privatize(v);
    }
    let trace = extract_tasks(&outcome.module, &ExecConfig::default(), cfg).expect("runs");
    assert_eq!(trace.tasks.len(), 16);
    let sim4 = simulate(&trace, &SimConfig::with_threads(4));
    let sim1 = simulate(&trace, &SimConfig::with_threads(1));
    assert!(sim4.speedup > 2.0, "4 threads: {:.2}", sim4.speedup);
    assert!(sim1.speedup <= 1.01, "1 thread cannot speed up");
    assert!(sim4.speedup > sim1.speedup);

    // 3. The reduce loop joins producers.
    assert!(
        trace.main_joins.iter().any(|&(_, t)| t == TaskId(0)),
        "the total += staged[0] read joins task 0: {:?}",
        trace.main_joins
    );
}

#[test]
fn thread_scaling_is_monotone() {
    let w = alchemist::workloads::by_name("ogg").unwrap();
    let m = w.module();
    let spec = w.parallel.as_ref().unwrap();
    let mut cfg = ExtractConfig::default();
    for head in w.resolve_targets(&m) {
        cfg = cfg.mark(head);
    }
    for v in spec.privatized {
        cfg = cfg.privatize(v);
    }
    let trace = extract_tasks(&m, &w.exec_config(Scale::Tiny), cfg).expect("runs");
    let mut last = 0.0;
    for threads in [1, 2, 4, 8] {
        let s = simulate(&trace, &SimConfig::with_threads(threads)).speedup;
        assert!(
            s + 1e-9 >= last,
            "speedup degraded from {last:.2} to {s:.2} at {threads} threads"
        );
        last = s;
    }
}

#[test]
fn profile_reports_are_deterministic() {
    let src = gen_program(0xfeed_beef, GenConfig::default());
    let a = profile_source(&src, vec![]).expect("runs");
    let b = profile_source(&src, vec![]).expect("runs");
    assert_eq!(a.report().render(20), b.report().render(20));
    assert_eq!(a.exec, b.exec);
}

#[test]
fn compile_errors_surface_with_location() {
    let err = profile_source("int main() { return 1 + ; }", vec![]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("parse error"), "{msg}");
    assert!(msg.contains("1:"), "location missing: {msg}");
}

#[test]
fn runtime_traps_surface_with_location() {
    let err = profile_source("int a[3];\nint main() {\n    return a[9];\n}", vec![]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("out of bounds"), "{msg}");
    assert!(msg.contains("3:"), "trap line missing: {msg}");
}

#[test]
fn generated_programs_profile_without_panicking() {
    for seed in 0..40u64 {
        let src = gen_program(seed * 31 + 5, GenConfig::default());
        let outcome = profile_source(&src, vec![]).expect("generated programs run");
        let report = outcome.report();
        // Render exercises every formatting path.
        let text = report.render(10);
        assert!(text.contains("Method main"));
        // Sanity: sizes normalized, main is the root.
        let main = report.find("Method main").unwrap();
        assert!((main.norm_size - 1.0).abs() < 1e-9);
        // Advisor never panics either.
        let _ = suggest_candidates(&report, &outcome.module, 0.01, 10);
    }
}

#[test]
fn respecting_war_waw_serializes_harder() {
    // A WAR/WAW-laden worker: honoring those conflicts must not be faster
    // than the privatized schedule.
    let src = "
        int scratch[32];
        int out[16];
        void work(int r) {
            int i;
            for (i = 0; i < 32; i++) scratch[i] = r * i;
            int acc = 0;
            for (i = 0; i < 32; i++) acc += scratch[i];
            out[r] = acc;
        }
        int main() {
            int r;
            for (r = 0; r < 16; r++) work(r);
            return out[15];
        }";
    let module = compile_source(src).expect("compiles");
    let head = module.func_by_name("work").unwrap().1.entry;
    let strict = ExtractConfig {
        respect_war_waw: true,
        ..ExtractConfig::default()
    }
    .mark(head);
    let relaxed = ExtractConfig::default().mark(head).privatize("scratch");
    let exec = ExecConfig::default();
    let s_strict = simulate(
        &extract_tasks(&module, &exec, strict).unwrap(),
        &SimConfig::with_threads(4),
    );
    let s_relaxed = simulate(
        &extract_tasks(&module, &exec, relaxed).unwrap(),
        &SimConfig::with_threads(4),
    );
    assert!(
        s_relaxed.speedup >= s_strict.speedup,
        "privatized {:.2} must beat strict {:.2}",
        s_relaxed.speedup,
        s_strict.speedup
    );
    assert!(s_relaxed.speedup > 2.0, "got {:.2}", s_relaxed.speedup);
}

#[test]
fn profile_outcome_exposes_pool_and_depth() {
    let outcome = profile_source(
        "int g; int main() { int i; for (i = 0; i < 64; i++) g += i; return g; }",
        vec![],
    )
    .unwrap();
    assert!(outcome.max_depth >= 2, "main + loop iteration open at once");
    assert!(outcome.pool_stats.allocated > 0);
    assert_eq!(outcome.pool_stats.overflow_growths, 0);
}
